//! Agglomerative hierarchical clustering with selectable linkage.
//!
//! Produces a full [`Dendrogram`] (the merge history Figure 5 visualizes)
//! which can be cut at any `k` to obtain a flat [`Clustering`].

use crate::cluster::Clustering;
use crate::distance::pairwise_euclidean;
use crate::error::AnalysisError;
use crate::kernels::KernelTimer;
use crate::matrix::Matrix;
use crate::sym::SymMatrix;

/// Linkage criterion used to measure inter-cluster distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Linkage {
    /// Minimum pairwise distance between members.
    Single,
    /// Maximum pairwise distance between members.
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
    /// Ward's minimum-variance criterion (via Lance–Williams).
    Ward,
}

/// One merge step: clusters `a` and `b` (node ids) fuse at `distance` into
/// node `n_leaves + step`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First fused node (leaf id `< n`, internal id `>= n`).
    pub a: usize,
    /// Second fused node.
    pub b: usize,
    /// Linkage distance at which the fusion happens.
    pub distance: f64,
}

/// The full merge tree of an agglomerative run over `n` leaves.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
    linkage: Linkage,
}

impl Dendrogram {
    /// Number of original observations.
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge history, in fusion order (n−1 entries).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// The linkage used to build the tree.
    pub fn linkage(&self) -> Linkage {
        self.linkage
    }

    /// Cut the tree into `k` flat clusters: replay all merges except the
    /// last `k − 1`.
    pub fn cut(&self, k: usize) -> Result<Clustering, AnalysisError> {
        let n = self.n_leaves;
        if k == 0 || k > n {
            return Err(AnalysisError::InvalidClusterCount(format!(
                "k = {k} for {n} observations"
            )));
        }
        // Union-find over node ids; nodes n.. are internal.
        let mut parent: Vec<usize> = (0..n + self.merges.len()).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, merge) in self.merges.iter().take(n - k).enumerate() {
            let node = n + step;
            let ra = find(&mut parent, merge.a);
            let rb = find(&mut parent, merge.b);
            parent[ra] = node;
            parent[rb] = node;
        }
        // Map roots to compact labels in first-appearance order.
        let mut label_of_root: Vec<(usize, usize)> = Vec::new();
        let mut labels = Vec::with_capacity(n);
        for leaf in 0..n {
            let root = find(&mut parent, leaf);
            let label = match label_of_root.iter().find(|(r, _)| *r == root) {
                Some(&(_, l)) => l,
                None => {
                    let l = label_of_root.len();
                    label_of_root.push((root, l));
                    l
                }
            };
            labels.push(label);
        }
        Clustering::new(labels, k)
    }
}

/// Build the dendrogram for the rows of `m` under the given linkage using
/// the Lance–Williams update formula.
pub fn hierarchical(m: &Matrix, linkage: Linkage) -> Result<Dendrogram, AnalysisError> {
    let mut span = mwc_obs::span("analysis.hierarchical");
    span.field("rows", m.rows());
    if m.rows() == 0 {
        return Err(AnalysisError::EmptyInput("matrix has no rows".into()));
    }
    hierarchical_with_distances(&pairwise_euclidean(m), linkage)
}

/// [`hierarchical`] over a precomputed packed pairwise-distance matrix.
///
/// Agglomeration only consults dissimilarities, so callers holding the
/// distance matrix can build one dendrogram per linkage without ever
/// recomputing distances — and since a dendrogram can be [`Dendrogram::cut`]
/// at any `k`, one build serves a whole sweep over cluster counts.
pub fn hierarchical_with_distances(
    base: &SymMatrix,
    linkage: Linkage,
) -> Result<Dendrogram, AnalysisError> {
    let _t = KernelTimer::new("kernel.hierarchical_ns");
    let n = base.rows();
    if n == 0 {
        return Err(AnalysisError::EmptyInput(
            "distance matrix has no rows".into(),
        ));
    }
    // Active cluster list: (node_id, size). Distances kept in a flat map
    // keyed by position in `active`.
    let mut active: Vec<(usize, usize)> = (0..n).map(|i| (i, 1)).collect();
    let mut dist: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| base.get(i, j)).collect())
        .collect();
    // Ward operates on squared distances in the Lance–Williams recurrence.
    if linkage == Linkage::Ward {
        for row in &mut dist {
            for v in row.iter_mut() {
                *v = *v * *v;
            }
        }
    }
    let mut merges = Vec::with_capacity(n.saturating_sub(1));

    while active.len() > 1 {
        // Find the closest active pair (ties broken by lowest indices, so
        // the result is deterministic).
        let (mut bi, mut bj, mut bd) = (0, 1, f64::INFINITY);
        for (i, row) in dist.iter().enumerate() {
            for (j, &d) in row.iter().enumerate().skip(i + 1) {
                if d < bd {
                    bd = d;
                    bi = i;
                    bj = j;
                }
            }
        }

        let (id_a, size_a) = active[bi];
        let (id_b, size_b) = active[bj];
        let reported = if linkage == Linkage::Ward {
            bd.sqrt()
        } else {
            bd
        };
        merges.push(Merge {
            a: id_a,
            b: id_b,
            distance: reported,
        });

        // Lance–Williams update of distances from the merged cluster to
        // every other active cluster.
        let merged_size = size_a + size_b;
        let mut new_row = Vec::with_capacity(active.len() - 1);
        for k in 0..active.len() {
            if k == bi || k == bj {
                continue;
            }
            let (_, size_k) = active[k];
            // `dist` is kept fully symmetric, so direct indexing is safe.
            let d_ak = dist[bi][k];
            let d_bk = dist[bj][k];
            let d_ab = bd;
            let v = match linkage {
                Linkage::Single => d_ak.min(d_bk),
                Linkage::Complete => d_ak.max(d_bk),
                Linkage::Average => {
                    (size_a as f64 * d_ak + size_b as f64 * d_bk) / merged_size as f64
                }
                Linkage::Ward => {
                    let sa = size_a as f64;
                    let sb = size_b as f64;
                    let sk = size_k as f64;
                    let st = sa + sb + sk;
                    ((sa + sk) * d_ak + (sb + sk) * d_bk - sk * d_ab) / st
                }
            };
            new_row.push(v);
        }

        // Rebuild the active list and distance matrix with the merged
        // cluster appended at the end.
        let new_node = n + merges.len() - 1;
        let keep: Vec<usize> = (0..active.len()).filter(|&k| k != bi && k != bj).collect();
        let mut next_dist: Vec<Vec<f64>> = keep
            .iter()
            .map(|&i| keep.iter().map(|&j| dist[i][j]).collect())
            .collect();
        for (row, &v) in next_dist.iter_mut().zip(&new_row) {
            row.push(v);
        }
        let mut last = new_row.clone();
        last.push(0.0);
        next_dist.push(last);

        let mut next_active: Vec<(usize, usize)> = keep.iter().map(|&i| active[i]).collect();
        next_active.push((new_node, merged_size));
        active = next_active;
        dist = next_dist;
    }

    Ok(Dendrogram {
        n_leaves: n,
        merges,
        linkage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.2, 0.0],
            vec![0.0, 0.2],
            vec![5.0, 5.0],
            vec![5.2, 5.0],
            vec![9.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn merge_count_is_n_minus_one() {
        let d = hierarchical(&blobs(), Linkage::Average).unwrap();
        assert_eq!(d.merges().len(), 5);
        assert_eq!(d.n_leaves(), 6);
    }

    #[test]
    fn cut_recovers_blobs() {
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let d = hierarchical(&blobs(), linkage).unwrap();
            let c = d.cut(3).unwrap();
            let l = c.labels();
            assert_eq!(l[0], l[1], "{linkage:?}");
            assert_eq!(l[1], l[2], "{linkage:?}");
            assert_eq!(l[3], l[4], "{linkage:?}");
            assert_ne!(l[0], l[3], "{linkage:?}");
            assert_ne!(l[0], l[5], "{linkage:?}");
            assert_ne!(l[3], l[5], "{linkage:?}");
        }
    }

    #[test]
    fn cut_k_one_and_k_n() {
        let d = hierarchical(&blobs(), Linkage::Complete).unwrap();
        let all = d.cut(1).unwrap();
        assert!(all.labels().iter().all(|&l| l == 0));
        let singletons = d.cut(6).unwrap();
        let mut l = singletons.labels().to_vec();
        l.sort_unstable();
        l.dedup();
        assert_eq!(l.len(), 6);
    }

    #[test]
    fn invalid_cut_rejected() {
        let d = hierarchical(&blobs(), Linkage::Average).unwrap();
        assert!(d.cut(0).is_err());
        assert!(d.cut(7).is_err());
    }

    #[test]
    fn single_linkage_distances_nondecreasing() {
        let d = hierarchical(&blobs(), Linkage::Single).unwrap();
        let ds: Vec<f64> = d.merges().iter().map(|m| m.distance).collect();
        for w in ds.windows(2) {
            assert!(
                w[1] >= w[0] - 1e-9,
                "single-linkage merges are monotone: {ds:?}"
            );
        }
    }

    #[test]
    fn first_merge_is_closest_pair() {
        let d = hierarchical(&blobs(), Linkage::Average).unwrap();
        let first = d.merges()[0];
        // Closest pair in `blobs` is (0,1)/(0,2)/(3,4) at distance 0.2.
        #[cfg(not(feature = "f32-kernels"))]
        let tol = 1e-9;
        #[cfg(feature = "f32-kernels")]
        let tol = 1e-4;
        assert!((first.distance - 0.2).abs() < tol);
    }

    #[test]
    fn empty_matrix_rejected() {
        let m = Matrix::zeros(0, 2);
        assert!(hierarchical(&m, Linkage::Average).is_err());
    }

    #[test]
    fn deterministic() {
        let m = blobs();
        let a = hierarchical(&m, Linkage::Ward).unwrap();
        let b = hierarchical(&m, Linkage::Ward).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn shared_distances_give_identical_dendrogram() {
        let m = blobs();
        let d = pairwise_euclidean(&m);
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            assert_eq!(
                hierarchical(&m, linkage).unwrap(),
                hierarchical_with_distances(&d, linkage).unwrap(),
                "{linkage:?}"
            );
        }
    }

    #[test]
    fn agrees_with_kmeans_on_clean_data() {
        let m = blobs();
        let h = hierarchical(&m, Linkage::Ward).unwrap().cut(3).unwrap();
        let k = crate::cluster::kmeans(&m, 3, 42).unwrap();
        assert!(h.same_partition(&k));
    }
}
