//! Partitioning Around Medoids (Kaufman & Rousseeuw's PAM).
//!
//! BUILD seeds the medoids greedily; SWAP exchanges medoid/non-medoid pairs
//! while the total dissimilarity decreases. PAM is fully deterministic —
//! the `seed` parameter exists for interface symmetry with k-means but does
//! not influence the result.

use crate::cluster::Clustering;
use crate::distance::pairwise_euclidean;
use crate::error::AnalysisError;
use crate::kernels::KernelTimer;
use crate::matrix::Matrix;
use crate::sym::SymMatrix;

/// Cluster the rows of `m` into `k` clusters around medoids.
pub fn pam(m: &Matrix, k: usize, _seed: u64) -> Result<Clustering, AnalysisError> {
    let mut span = mwc_obs::span("analysis.pam");
    span.field("k", k);
    span.field("rows", m.rows());
    pam_with_distances(&pairwise_euclidean(m), k)
}

/// [`pam`] over a precomputed packed pairwise-distance matrix.
///
/// PAM only ever consults dissimilarities, so callers that already hold
/// the distance matrix (validation sweeps, stability measures) can share
/// one computation across many clusterings. The result is identical to
/// [`pam`] on the matrix the distances came from.
pub fn pam_with_distances(d: &SymMatrix, k: usize) -> Result<Clustering, AnalysisError> {
    let _t = KernelTimer::new("kernel.pam_ns");
    let n = d.rows();
    if k == 0 || k > n {
        return Err(AnalysisError::InvalidClusterCount(format!(
            "k = {k} for {n} observations"
        )));
    }

    // BUILD: first medoid minimizes total distance; each further medoid
    // maximizes the decrease in total dissimilarity. Row sums come off the
    // packed triangle, computed once per candidate instead of once per
    // comparison.
    let row_sums: Vec<f64> = (0..n).map(|i| d.row_sum(i)).collect();
    let mut medoids: Vec<usize> = Vec::with_capacity(k);
    let first = (0..n)
        .min_by(|&a, &b| row_sums[a].total_cmp(&row_sums[b]))
        .ok_or_else(|| AnalysisError::EmptyInput("no observations to seed medoids".into()))?;
    medoids.push(first);
    while medoids.len() < k {
        let mut best_gain = f64::NEG_INFINITY;
        let mut best = None;
        for cand in 0..n {
            if medoids.contains(&cand) {
                continue;
            }
            let gain: f64 = (0..n)
                .map(|j| {
                    let current = nearest_dist(d, &medoids, j);
                    (current - d.get(j, cand)).max(0.0)
                })
                .sum();
            if gain > best_gain {
                best_gain = gain;
                best = Some(cand);
            }
        }
        let next = best.ok_or_else(|| {
            AnalysisError::InvalidClusterCount(format!(
                "no medoid candidates left at {} of {k}",
                medoids.len()
            ))
        })?;
        medoids.push(next);
    }

    // SWAP: steepest-descent exchange until no swap improves the cost.
    let mut cost = assignment_cost(d, &medoids, n);
    loop {
        let mut best_delta = -1e-12;
        let mut best_swap = None;
        for mi in 0..medoids.len() {
            for cand in 0..n {
                if medoids.contains(&cand) {
                    continue;
                }
                let mut trial = medoids.clone();
                trial[mi] = cand;
                let trial_cost = assignment_cost(d, &trial, n);
                let delta = trial_cost - cost;
                if delta < best_delta {
                    best_delta = delta;
                    best_swap = Some((mi, cand, trial_cost));
                }
            }
        }
        match best_swap {
            Some((mi, cand, new_cost)) => {
                medoids[mi] = cand;
                cost = new_cost;
            }
            None => break,
        }
    }

    let labels = (0..n)
        .map(|j| {
            (0..k)
                .min_by(|&a, &b| d.get(j, medoids[a]).total_cmp(&d.get(j, medoids[b])))
                .unwrap_or(0)
        })
        .collect();
    Clustering::new(labels, k)
}

// Small helpers kept private to the module.

fn nearest_dist(d: &SymMatrix, medoids: &[usize], j: usize) -> f64 {
    medoids
        .iter()
        .map(|&m| d.get(j, m))
        .fold(f64::INFINITY, f64::min)
}

fn assignment_cost(d: &SymMatrix, medoids: &[usize], n: usize) -> f64 {
    (0..n).map(|j| nearest_dist(d, medoids, j)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.2, 0.1],
            vec![0.1, 0.3],
            vec![8.0, 8.0],
            vec![8.1, 8.2],
            vec![7.9, 8.1],
        ])
        .unwrap()
    }

    #[test]
    fn recovers_two_blobs() {
        let c = pam(&blobs(), 2, 0).unwrap();
        let l = c.labels();
        assert_eq!(l[0], l[1]);
        assert_eq!(l[1], l[2]);
        assert_eq!(l[3], l[4]);
        assert_eq!(l[4], l[5]);
        assert_ne!(l[0], l[3]);
    }

    #[test]
    fn deterministic_regardless_of_seed() {
        let m = blobs();
        assert_eq!(pam(&m, 2, 1).unwrap(), pam(&m, 2, 999).unwrap());
    }

    #[test]
    fn shared_distances_give_identical_result() {
        let m = blobs();
        let d = pairwise_euclidean(&m);
        for k in 1..=4 {
            assert_eq!(pam(&m, k, 0).unwrap(), pam_with_distances(&d, k).unwrap());
        }
    }

    #[test]
    fn agrees_with_kmeans_on_clean_data() {
        let m = blobs();
        let p = pam(&m, 2, 0).unwrap();
        let k = crate::cluster::kmeans(&m, 2, 42).unwrap();
        assert!(p.same_partition(&k));
    }

    #[test]
    fn invalid_k_rejected() {
        let m = blobs();
        assert!(pam(&m, 0, 0).is_err());
        assert!(pam(&m, 7, 0).is_err());
    }

    #[test]
    fn k_equals_n_singletons() {
        let m = blobs();
        let c = pam(&m, 6, 0).unwrap();
        let mut l = c.labels().to_vec();
        l.sort_unstable();
        l.dedup();
        assert_eq!(l.len(), 6);
    }

    #[test]
    fn medoids_are_actual_points() {
        // With k = 1, the single cluster's medoid minimizes total distance;
        // every point must be labelled 0.
        let c = pam(&blobs(), 1, 0).unwrap();
        assert!(c.labels().iter().all(|&l| l == 0));
    }
}
