//! Lloyd's k-means with k-means++ seeding.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::cluster::Clustering;
use crate::distance::euclidean_sq;
use crate::error::AnalysisError;
use crate::kernels::KernelTimer;
use crate::matrix::Matrix;

/// Maximum Lloyd iterations before declaring convergence.
const MAX_ITER: usize = 200;

/// Number of independent k-means++ restarts; the run with the lowest
/// within-cluster sum of squares wins (R's `kmeans(nstart = ...)`
/// convention, which the paper's toolchain uses).
const RESTARTS: u64 = 10;

/// Row count below which restarts run serially: on small inputs (like the
/// paper's 18-unit study matrix) thread-spawn overhead dwarfs the work,
/// and the sweep above us may already be running on all cores.
const PARALLEL_MIN_ROWS: usize = 64;

/// Cluster the rows of `m` into `k` clusters with Lloyd's algorithm seeded
/// by k-means++, taking the best of several restarts. Deterministic for a
/// given `seed` regardless of the worker count: each restart's stream
/// depends only on `seed + restart`, restart results are collected in
/// restart order, and ties on cost resolve to the lowest restart index —
/// exactly the serial fold.
pub fn kmeans(m: &Matrix, k: usize, seed: u64) -> Result<Clustering, AnalysisError> {
    let mut span = mwc_obs::span("analysis.kmeans");
    span.field("k", k);
    span.field("rows", m.rows());
    let threads = if m.rows() >= PARALLEL_MIN_ROWS {
        mwc_parallel::configured_threads()
    } else {
        1
    };
    kmeans_with_threads(m, k, seed, threads)
}

/// [`kmeans`] with an explicit restart worker count (used by tests to pin
/// the parallel and serial paths against each other).
fn kmeans_with_threads(
    m: &Matrix,
    k: usize,
    seed: u64,
    threads: usize,
) -> Result<Clustering, AnalysisError> {
    let n = m.rows();
    if k == 0 || k > n {
        return Err(AnalysisError::InvalidClusterCount(format!(
            "k = {k} for {n} observations"
        )));
    }
    let restarts: Vec<u64> = (0..RESTARTS).collect();
    let runs = mwc_parallel::ordered_map(&restarts, threads, |&r, _| {
        kmeans_once(m, k, seed.wrapping_add(r)).map(|c| (inertia(m, &c), c))
    });
    let best = runs
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .reduce(|best, run| if run.0 < best.0 { run } else { best })
        .ok_or_else(|| AnalysisError::EmptyInput("no k-means restarts ran".into()))?;
    Ok(best.1)
}

/// Total within-cluster sum of squared distances to the centroid.
fn inertia(m: &Matrix, c: &Clustering) -> f64 {
    let k = c.k();
    let cols = m.cols();
    let mut centroids = vec![vec![0.0; cols]; k];
    let mut counts = vec![0usize; k];
    for (i, &l) in c.labels().iter().enumerate() {
        counts[l] += 1;
        for (s, v) in centroids[l].iter_mut().zip(m.row(i)) {
            *s += v;
        }
    }
    for (centroid, &n) in centroids.iter_mut().zip(&counts) {
        if n > 0 {
            for v in centroid.iter_mut() {
                *v /= n as f64;
            }
        }
    }
    c.labels()
        .iter()
        .enumerate()
        .map(|(i, &l)| euclidean_sq(m.row(i), &centroids[l]))
        .sum()
}

/// One seeded k-means++/Lloyd run.
fn kmeans_once(m: &Matrix, k: usize, seed: u64) -> Result<Clustering, AnalysisError> {
    let _t = KernelTimer::new("kernel.kmeans_ns");
    let n = m.rows();
    if k == 0 || k > n {
        return Err(AnalysisError::InvalidClusterCount(format!(
            "k = {k} for {n} observations"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut centroids = plus_plus_init(m, k, &mut rng);
    let mut labels = vec![0usize; n];
    // Update-step scratch, allocated once and zeroed per iteration.
    let mut sums = vec![vec![0.0; m.cols()]; k];
    let mut counts = vec![0usize; k];

    for _ in 0..MAX_ITER {
        // Assignment step. Each candidate distance is computed once; a
        // strict `<` replacement reproduces `min_by`'s first-minimum
        // tie-break.
        let mut changed = false;
        for (i, label) in labels.iter_mut().enumerate() {
            let row = m.row(i);
            let mut best = 0usize;
            let mut best_d = euclidean_sq(row, &centroids[0]);
            for (c, centroid) in centroids.iter().enumerate().skip(1) {
                let d = euclidean_sq(row, centroid);
                if d.total_cmp(&best_d) == std::cmp::Ordering::Less {
                    best_d = d;
                    best = c;
                }
            }
            if *label != best {
                *label = best;
                changed = true;
            }
        }
        // Update step.
        for sum in &mut sums {
            sum.iter_mut().for_each(|v| *v = 0.0);
        }
        counts.iter_mut().for_each(|c| *c = 0);
        for i in 0..n {
            counts[labels[i]] += 1;
            for (s, v) in sums[labels[i]].iter_mut().zip(m.row(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster on the point farthest from its
                // centroid, keeping k clusters alive. One distance per
                // point; `>=` replacement reproduces `max_by`'s
                // last-maximum tie-break.
                let mut far = 0usize;
                let mut far_d = euclidean_sq(m.row(0), &centroids[labels[0]]);
                for a in 1..n {
                    let d = euclidean_sq(m.row(a), &centroids[labels[a]]);
                    if d.total_cmp(&far_d) != std::cmp::Ordering::Less {
                        far_d = d;
                        far = a;
                    }
                }
                centroids[c] = m.row(far).to_vec();
                labels[far] = c;
            } else {
                for (j, s) in sums[c].iter().enumerate() {
                    centroids[c][j] = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    Clustering::new(labels, k)
}

/// k-means++ seeding: the first centroid is uniform, each next one is drawn
/// with probability proportional to the squared distance to the nearest
/// chosen centroid.
fn plus_plus_init(m: &Matrix, k: usize, rng: &mut StdRng) -> Vec<Vec<f64>> {
    let n = m.rows();
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let first = m.row(rng.gen_range(0..n)).to_vec();
    // Nearest-centroid squared distances, maintained incrementally: folding
    // each new centroid into the running minimum is the same left-to-right
    // `f64::min` chain as recomputing over all centroids, for a round that
    // costs O(n) distances instead of O(n · |centroids|).
    let mut d2: Vec<f64> = (0..n)
        .map(|i| f64::min(f64::INFINITY, euclidean_sq(m.row(i), &first)))
        .collect();
    centroids.push(first);
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let chosen = if total <= 0.0 {
            // All points coincide with a centroid: duplicate one.
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &d) in d2.iter().enumerate() {
                if target < d {
                    chosen = i;
                    break;
                }
                target -= d;
            }
            chosen
        };
        let next = m.row(chosen).to_vec();
        for (i, slot) in d2.iter_mut().enumerate() {
            *slot = f64::min(*slot, euclidean_sq(m.row(i), &next));
        }
        centroids.push(next);
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs of three points each.
    fn blobs() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.1],
            vec![0.0, 0.2],
            vec![10.0, 10.0],
            vec![10.1, 10.2],
            vec![10.2, 10.0],
            vec![-10.0, 10.0],
            vec![-10.1, 10.1],
            vec![-10.0, 10.2],
        ])
        .unwrap()
    }

    #[test]
    fn recovers_separated_blobs() {
        let c = kmeans(&blobs(), 3, 42).unwrap();
        let l = c.labels();
        assert_eq!(l[0], l[1]);
        assert_eq!(l[1], l[2]);
        assert_eq!(l[3], l[4]);
        assert_eq!(l[4], l[5]);
        assert_eq!(l[6], l[7]);
        assert_eq!(l[7], l[8]);
        assert_ne!(l[0], l[3]);
        assert_ne!(l[0], l[6]);
        assert_ne!(l[3], l[6]);
    }

    #[test]
    fn deterministic_per_seed() {
        let m = blobs();
        assert_eq!(kmeans(&m, 3, 7).unwrap(), kmeans(&m, 3, 7).unwrap());
    }

    #[test]
    fn k_equals_n_gives_singletons() {
        let m = blobs();
        let c = kmeans(&m, 9, 1).unwrap();
        let mut labels = c.labels().to_vec();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 9, "every point its own cluster");
    }

    #[test]
    fn k_one_groups_everything() {
        let c = kmeans(&blobs(), 1, 1).unwrap();
        assert!(c.labels().iter().all(|&l| l == 0));
    }

    #[test]
    fn invalid_k_rejected() {
        let m = blobs();
        assert!(kmeans(&m, 0, 1).is_err());
        assert!(kmeans(&m, 10, 1).is_err());
    }

    #[test]
    fn identical_points_do_not_crash() {
        let m = Matrix::from_rows(&vec![vec![1.0, 1.0]; 5]).unwrap();
        let c = kmeans(&m, 3, 3).unwrap();
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn all_labels_within_k() {
        let c = kmeans(&blobs(), 4, 11).unwrap();
        assert!(c.labels().iter().all(|&l| l < 4));
    }

    #[test]
    fn parallel_restarts_match_serial_exactly() {
        // A matrix large enough that kmeans() itself takes the parallel
        // path on multicore hosts; deterministic pseudo-random content.
        let rows: Vec<Vec<f64>> = (0..80)
            .map(|i| {
                (0..5)
                    .map(|j| {
                        let x = (i * 5 + j) as f64;
                        (x * 12.9898).sin() * 43.758
                    })
                    .collect()
            })
            .collect();
        let m = Matrix::from_rows(&rows).unwrap();
        for k in [2, 4, 7] {
            let serial = kmeans_with_threads(&m, k, 42, 1).unwrap();
            let parallel = kmeans_with_threads(&m, k, 42, 8).unwrap();
            assert_eq!(serial, parallel, "k = {k}");
            assert_eq!(serial, kmeans(&m, k, 42).unwrap(), "k = {k} public entry");
        }
    }
}
