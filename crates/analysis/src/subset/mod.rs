//! Benchmark subsetting and representativeness (§VI-B, Figure 7).
//!
//! * [`fastest_per_cluster`] — the paper's Naive subsetting rule: one
//!   benchmark per cluster, chosen by shortest runtime.
//! * [`total_min_euclidean`] — the Yi-et-al. representativeness measure:
//!   the sum over non-subset benchmarks of the distance to their nearest
//!   subset member (smaller = better coverage).
//! * [`incremental_distances`] — the build-up curve of Figure 7: distances
//!   as subset members are added one by one, then the remaining benchmarks
//!   greedily.
//! * [`runtime_reduction`] — Table VI's evaluation-time saving.

use crate::cluster::Clustering;
use crate::distance::euclidean;
use crate::matrix::Matrix;

/// The paper's Naive subsetting rule: from every cluster pick the member
/// with the shortest runtime. Returns subset indices in cluster order.
///
/// Panics if `runtimes` does not have one entry per clustered observation.
pub fn fastest_per_cluster(clustering: &Clustering, runtimes: &[f64]) -> Vec<usize> {
    assert_eq!(
        clustering.len(),
        runtimes.len(),
        "one runtime per observation required"
    );
    clustering
        .members()
        .iter()
        .filter_map(|members| {
            members
                .iter()
                .min_by(|&&a, &&b| runtimes[a].total_cmp(&runtimes[b]))
                .copied()
        })
        .collect()
}

/// Yi et al.'s representativeness measure: for every benchmark *not* in
/// `subset`, take the Euclidean distance to its nearest subset member, and
/// sum those distances. Smaller totals mean the subset represents and
/// covers the full set better.
///
/// `m` should hold max-normalized feature vectors (one row per benchmark).
/// An empty subset returns infinity; a subset covering everything returns 0.
pub fn total_min_euclidean(m: &Matrix, subset: &[usize]) -> f64 {
    if subset.is_empty() {
        return f64::INFINITY;
    }
    let mut total = 0.0;
    for i in 0..m.rows() {
        if subset.contains(&i) {
            continue;
        }
        let nearest = subset
            .iter()
            .map(|&s| euclidean(m.row(i), m.row(s)))
            .fold(f64::INFINITY, f64::min);
        total += nearest;
    }
    total
}

/// The Figure 7 build-up curve. Starting from the first element of
/// `ordered_subset`, add the subset members one at a time; once the subset
/// is exhausted, "we add the rest of the benchmarks" (§VI-B) in their
/// benchmark-set order. Returns the distance after each addition
/// (`m.rows()` values; the last is always 0).
pub fn incremental_distances(m: &Matrix, ordered_subset: &[usize]) -> Vec<f64> {
    let n = m.rows();
    let mut current: Vec<usize> = Vec::with_capacity(n);
    let mut curve = Vec::with_capacity(n);
    for &s in ordered_subset {
        current.push(s);
        curve.push(total_min_euclidean(m, &current));
    }
    for i in 0..n {
        if !current.contains(&i) {
            current.push(i);
            curve.push(total_min_euclidean(m, &current));
        }
    }
    curve
}

/// Percentage reduction in total running time from executing only `subset`
/// instead of every benchmark (Table VI). Returns a value in `[0, 100]`.
pub fn runtime_reduction(runtimes: &[f64], subset: &[usize]) -> f64 {
    let total: f64 = runtimes.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let subset_time: f64 = subset.iter().map(|&i| runtimes[i]).sum();
    (1.0 - subset_time / total) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::Clustering;

    fn m() -> Matrix {
        Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![5.0, 5.0],
            vec![5.1, 5.0],
            vec![9.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn fastest_per_cluster_picks_minimum_runtime() {
        let c = Clustering::new(vec![0, 0, 1, 1, 2], 3).unwrap();
        let runtimes = [100.0, 50.0, 30.0, 80.0, 10.0];
        assert_eq!(fastest_per_cluster(&c, &runtimes), vec![1, 2, 4]);
    }

    #[test]
    fn empty_subset_is_infinitely_bad() {
        assert_eq!(total_min_euclidean(&m(), &[]), f64::INFINITY);
    }

    #[test]
    fn full_subset_has_zero_distance() {
        assert_eq!(total_min_euclidean(&m(), &[0, 1, 2, 3, 4]), 0.0);
    }

    #[test]
    fn near_neighbours_give_small_distance() {
        let d_good = total_min_euclidean(&m(), &[0, 2, 4]);
        let d_bad = total_min_euclidean(&m(), &[0]);
        assert!(d_good < d_bad);
        // 1 is 0.1 from 0; 3 is 0.1 from 2 → total 0.2.
        assert!((d_good - 0.2).abs() < 1e-9);
    }

    #[test]
    fn adding_members_never_hurts() {
        let mat = m();
        let d1 = total_min_euclidean(&mat, &[0]);
        let d2 = total_min_euclidean(&mat, &[0, 2]);
        let d3 = total_min_euclidean(&mat, &[0, 2, 4]);
        assert!(d2 <= d1);
        assert!(d3 <= d2);
    }

    #[test]
    fn incremental_curve_is_monotone_and_ends_at_zero() {
        let mat = m();
        let curve = incremental_distances(&mat, &[0, 2]);
        assert_eq!(curve.len(), 5);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "curve must not increase: {curve:?}");
        }
        assert!(curve.last().unwrap().abs() < 1e-12);
    }

    #[test]
    fn tail_follows_benchmark_order() {
        let mat = m();
        let curve = incremental_distances(&mat, &[2]);
        // After the subset member 2, the tail adds 0, 1, 3, 4 in order.
        assert!((curve[1] - total_min_euclidean(&mat, &[2, 0])).abs() < 1e-12);
        assert!((curve[2] - total_min_euclidean(&mat, &[2, 0, 1])).abs() < 1e-12);
    }

    #[test]
    fn runtime_reduction_table6_style() {
        let runtimes = [100.0, 200.0, 300.0, 400.0];
        let r = runtime_reduction(&runtimes, &[0]);
        assert!((r - 90.0).abs() < 1e-9);
        assert_eq!(runtime_reduction(&runtimes, &[0, 1, 2, 3]), 0.0);
        assert_eq!(runtime_reduction(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "one runtime per observation")]
    fn mismatched_runtimes_panic() {
        let c = Clustering::new(vec![0, 0], 1).unwrap();
        fastest_per_cluster(&c, &[1.0]);
    }
}
