//! A packed symmetric matrix with zero diagonal, for pairwise distances.
//!
//! A dense `n × n` [`crate::Matrix`] stores every pairwise distance twice
//! plus a diagonal of structural zeros. [`SymMatrix`] stores only the
//! strictly-lower triangle — `n(n−1)/2` values instead of `n²` — halving
//! the memory of every distance matrix the validation sweep keeps alive
//! (one full matrix plus one per leave-one-column-out feature set).

/// A symmetric `n × n` matrix with an implicit zero diagonal, stored as
/// the strictly-lower triangle in row-major packed order: row `i` occupies
/// `packed[i(i−1)/2 .. i(i−1)/2 + i]`, holding entries `(i, 0) .. (i, i−1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct SymMatrix {
    n: usize,
    packed: Vec<f64>,
}

/// Offset of row `i`'s first packed entry.
#[inline]
fn row_start(i: usize) -> usize {
    i * i.saturating_sub(1) / 2
}

impl SymMatrix {
    /// Build from the strictly-lower triangle in packed row-major order.
    /// Panics unless `packed.len() == n(n−1)/2`.
    pub fn from_packed(n: usize, packed: Vec<f64>) -> Self {
        assert_eq!(
            packed.len(),
            n * n.saturating_sub(1) / 2,
            "packed length must be n(n-1)/2"
        );
        SymMatrix { n, packed }
    }

    /// An all-zero symmetric matrix.
    pub fn zeros(n: usize) -> Self {
        SymMatrix {
            n,
            packed: vec![0.0; n * n.saturating_sub(1) / 2],
        }
    }

    /// Number of rows (= columns).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of rows — alias so code generic over dense [`crate::Matrix`]
    /// distance matrices ports without changes.
    pub fn rows(&self) -> usize {
        self.n
    }

    /// Element accessor; `get(i, i)` is always 0. Panics on out-of-range
    /// indices.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index ({i},{j}) out of range");
        match i.cmp(&j) {
            std::cmp::Ordering::Equal => 0.0,
            std::cmp::Ordering::Greater => self.packed[row_start(i) + j],
            std::cmp::Ordering::Less => self.packed[row_start(j) + i],
        }
    }

    /// The packed strictly-lower triangle (row-major).
    pub fn packed(&self) -> &[f64] {
        &self.packed
    }

    /// The packed entries of row `i` below the diagonal: `(i, 0) .. (i, i−1)`
    /// as one contiguous slice.
    #[inline]
    pub fn row_below(&self, i: usize) -> &[f64] {
        assert!(i < self.n, "row {i} out of range");
        &self.packed[row_start(i)..row_start(i) + i]
    }

    /// Sum over one full (virtual) row: `Σ_j get(i, j)`. The below-diagonal
    /// part is a contiguous slice; the above-diagonal part walks the packed
    /// rows below.
    pub fn row_sum(&self, i: usize) -> f64 {
        assert!(i < self.n, "row {i} out of range");
        let mut sum: f64 = self.row_below(i).iter().sum();
        for j in (i + 1)..self.n {
            sum += self.packed[row_start(j) + i];
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m3() -> SymMatrix {
        // Lower triangle of
        //   0 1 2
        //   1 0 3
        //   2 3 0
        SymMatrix::from_packed(3, vec![1.0, 2.0, 3.0])
    }

    #[test]
    fn symmetric_access_with_zero_diagonal() {
        let m = m3();
        assert_eq!(m.n(), 3);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(2, 0), 2.0);
        assert_eq!(m.get(2, 1), 3.0);
    }

    #[test]
    fn packed_length_is_triangular() {
        assert_eq!(SymMatrix::zeros(6).packed().len(), 15);
        assert_eq!(SymMatrix::zeros(1).packed().len(), 0);
        assert_eq!(SymMatrix::zeros(0).packed().len(), 0);
    }

    #[test]
    fn row_below_is_contiguous_prefix() {
        let m = m3();
        assert_eq!(m.row_below(0), &[] as &[f64]);
        assert_eq!(m.row_below(1), &[1.0]);
        assert_eq!(m.row_below(2), &[2.0, 3.0]);
    }

    #[test]
    fn row_sum_covers_both_triangles() {
        let m = m3();
        assert_eq!(m.row_sum(0), 3.0);
        assert_eq!(m.row_sum(1), 4.0);
        assert_eq!(m.row_sum(2), 5.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        m3().get(0, 3);
    }

    #[test]
    #[should_panic(expected = "n(n-1)/2")]
    fn wrong_packed_length_rejected() {
        SymMatrix::from_packed(3, vec![1.0]);
    }
}
