//! Error type for analysis operations.

use std::error::Error;
use std::fmt;

/// Errors produced by analysis routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// Matrix dimensions are inconsistent with the operation.
    DimensionMismatch(String),
    /// A clustering request is infeasible (k = 0, k > number of rows, ...).
    InvalidClusterCount(String),
    /// The input data is empty where data is required.
    EmptyInput(String),
    /// A study produced no usable unit profiles to featurize (every unit
    /// failed to capture).
    EmptyStudy,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::DimensionMismatch(what) => write!(f, "dimension mismatch: {what}"),
            AnalysisError::InvalidClusterCount(what) => {
                write!(f, "invalid cluster count: {what}")
            }
            AnalysisError::EmptyInput(what) => write!(f, "empty input: {what}"),
            AnalysisError::EmptyStudy => {
                write!(f, "empty study: no unit produced a usable profile")
            }
        }
    }
}

impl Error for AnalysisError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_context() {
        assert!(AnalysisError::DimensionMismatch("3 vs 4".into())
            .to_string()
            .contains("3 vs 4"));
        assert!(AnalysisError::InvalidClusterCount("k=0".into())
            .to_string()
            .contains("k=0"));
        assert!(AnalysisError::EmptyInput("matrix".into())
            .to_string()
            .contains("matrix"));
        assert!(AnalysisError::EmptyStudy
            .to_string()
            .contains("empty study"));
    }
}
