//! # The append-only study database (`MWC_STUDY_DB`)
//!
//! Every completed study is persisted as one self-contained record:
//! the spec (wire form), timings, the executing backend, and the full
//! encoded [`Characterization`] — per-unit profiles *and* their
//! `CaptureHealth` — in the cache's digest-verified codec. That makes
//! historical runs first-class data:
//!
//! * **Resumable sweeps** — an interrupted sweep restarts, finds its
//!   finished points by [`StudySpec::study_key`] and replays them from
//!   the DB without re-simulating (the `sweep` bin; the `soc.runs`
//!   counter is the oracle that no simulation happened).
//! * **History** — the `report` bin lists records and diffs two runs
//!   by digest.
//!
//! ## Record format
//!
//! ```text
//! b"MWDB" | version:u32 | len:u64 | payload | fnv64(payload)
//! payload: study_key:u64 | digest:u64 | elapsed_ns:u64
//!        | recorded_unix:u64 | units:u32 | failed_units:u32
//!        | exec_len:u32 | exec | wire_len:u32 | wire
//!        | study_len:u64 | encode_study bytes
//! ```
//!
//! Append-only and crash-tolerant: records are only ever appended, a
//! torn or corrupt record is skipped by rescanning for the next magic
//! (counted in `studydb.corrupt_records`), and decoding a record's
//! study re-verifies the stored digest — corruption degrades to a
//! recompute, never to wrong results. Duplicate `(study_key, digest)`
//! pairs are dropped at append time.

use std::collections::HashSet;
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

use crate::cache::{decode_study, encode_study};
use crate::pipeline::{Characterization, Fnv1a};
use crate::spec::StudySpec;

/// Path of the append-only study database; unset disables persistence.
pub const STUDY_DB_ENV: &str = "MWC_STUDY_DB";

const RECORD_MAGIC: &[u8; 4] = b"MWDB";
const RECORD_VERSION: u32 = 1;
/// Upper bound on one record's payload; larger lengths are treated as
/// corruption while scanning.
const MAX_RECORD: u64 = 1 << 30;

/// One persisted study run.
#[derive(Debug, Clone)]
pub struct StudyRecord {
    /// Content key of the spec ([`StudySpec::study_key`]).
    pub study_key: u64,
    /// Result fingerprint ([`Characterization::digest`]).
    pub digest: u64,
    /// Wall-clock of the run that produced it, in nanoseconds.
    pub elapsed_ns: u64,
    /// Unix seconds when the record was written.
    pub recorded_unix: u64,
    /// Units profiled.
    pub units: u32,
    /// Units that failed every capture attempt.
    pub failed_units: u32,
    /// Description of the backend that ran it (e.g. `subprocess:4`).
    pub exec: String,
    /// The spec in wire form (empty when the platform is not a preset
    /// the wire format can name).
    pub spec_wire: String,
    /// The encoded study (cache codec).
    payload: Vec<u8>,
}

impl StudyRecord {
    /// Build a record for a completed study.
    pub fn new(
        spec: &StudySpec,
        study: &Characterization,
        exec: impl Into<String>,
        elapsed: Duration,
    ) -> Self {
        let study_key = spec.study_key();
        let report = study.report();
        StudyRecord {
            study_key,
            digest: study.digest(),
            elapsed_ns: elapsed.as_nanos().min(u64::MAX as u128) as u64,
            recorded_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            units: study.profiles().len() as u32,
            failed_units: report.failed_units.len() as u32,
            exec: exec.into(),
            spec_wire: crate::wire::to_wire(spec).unwrap_or_default(),
            payload: encode_study(study_key, study),
        }
    }

    /// Decode the stored study, verifying the cache codec's stored
    /// digest. `None` means the record's study bytes are corrupt.
    pub fn study(&self) -> Option<Characterization> {
        decode_study(self.study_key, &self.payload)
    }

    fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(64 + self.payload.len());
        payload.extend_from_slice(&self.study_key.to_le_bytes());
        payload.extend_from_slice(&self.digest.to_le_bytes());
        payload.extend_from_slice(&self.elapsed_ns.to_le_bytes());
        payload.extend_from_slice(&self.recorded_unix.to_le_bytes());
        payload.extend_from_slice(&self.units.to_le_bytes());
        payload.extend_from_slice(&self.failed_units.to_le_bytes());
        payload.extend_from_slice(&(self.exec.len() as u32).to_le_bytes());
        payload.extend_from_slice(self.exec.as_bytes());
        payload.extend_from_slice(&(self.spec_wire.len() as u32).to_le_bytes());
        payload.extend_from_slice(self.spec_wire.as_bytes());
        payload.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        payload.extend_from_slice(&self.payload);

        let mut out = Vec::with_capacity(payload.len() + 24);
        out.extend_from_slice(RECORD_MAGIC);
        out.extend_from_slice(&RECORD_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        out.extend_from_slice(&fnv64(&payload).to_le_bytes());
        out
    }

    fn decode(payload: &[u8]) -> Option<StudyRecord> {
        let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
            let slice = payload.get(*at..*at + n)?;
            *at += n;
            Some(slice)
        };
        let mut at = 0usize;
        let study_key = le_u64(take(&mut at, 8)?);
        let digest = le_u64(take(&mut at, 8)?);
        let elapsed_ns = le_u64(take(&mut at, 8)?);
        let recorded_unix = le_u64(take(&mut at, 8)?);
        let units = le_u32(take(&mut at, 4)?);
        let failed_units = le_u32(take(&mut at, 4)?);
        let exec_len = le_u32(take(&mut at, 4)?) as usize;
        let exec = String::from_utf8(take(&mut at, exec_len)?.to_vec()).ok()?;
        let wire_len = le_u32(take(&mut at, 4)?) as usize;
        let spec_wire = String::from_utf8(take(&mut at, wire_len)?.to_vec()).ok()?;
        let study_len = le_u64(take(&mut at, 8)?);
        if study_len > MAX_RECORD {
            return None;
        }
        let study = take(&mut at, study_len as usize)?.to_vec();
        (at == payload.len()).then_some(StudyRecord {
            study_key,
            digest,
            elapsed_ns,
            recorded_unix,
            units,
            failed_units,
            exec,
            spec_wire,
            payload: study,
        })
    }
}

/// Handle on an append-only study database file.
#[derive(Debug)]
pub struct StudyDb {
    path: PathBuf,
    /// `(study_key, digest)` pairs already on disk — the append-time
    /// dedup set.
    seen: Mutex<HashSet<(u64, u64)>>,
}

impl StudyDb {
    /// Open (creating parents as needed) the database at `path`. An
    /// existing file is scanned once to prime the dedup set; a missing
    /// file is an empty database.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<StudyDb> {
        let path = path.into();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let db = StudyDb {
            path,
            seen: Mutex::new(HashSet::new()),
        };
        let existing: Vec<(u64, u64)> = db
            .records()
            .iter()
            .map(|r| (r.study_key, r.digest))
            .collect();
        db.seen
            .lock()
            .expect("study db dedup set poisoned")
            .extend(existing);
        Ok(db)
    }

    /// The database file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Every decodable record, in append order. Corrupt or torn spans
    /// are skipped by rescanning for the next record magic (counted in
    /// `studydb.corrupt_records`).
    pub fn records(&self) -> Vec<StudyRecord> {
        let Ok(bytes) = fs::read(&self.path) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut at = 0usize;
        while let Some(start) = find_magic(&bytes, at) {
            match parse_record(&bytes[start..]) {
                Some((record, consumed)) => {
                    out.push(record);
                    at = start + consumed;
                }
                None => {
                    mwc_obs::metrics::counter_add("studydb.corrupt_records", 1);
                    at = start + 1;
                }
            }
        }
        out
    }

    /// The most recent record for `study_key`, if any. Counts
    /// `studydb.hits` / `studydb.misses`.
    pub fn find(&self, study_key: u64) -> Option<StudyRecord> {
        let found = self
            .records()
            .into_iter()
            .rev()
            .find(|r| r.study_key == study_key);
        match &found {
            Some(_) => mwc_obs::metrics::counter_add("studydb.hits", 1),
            None => mwc_obs::metrics::counter_add("studydb.misses", 1),
        }
        found
    }

    /// Append `record` unless an identical `(study_key, digest)` pair
    /// is already present. Returns whether a record was written.
    pub fn append(&self, record: &StudyRecord) -> io::Result<bool> {
        let mut seen = self.seen.lock().expect("study db dedup set poisoned");
        if !seen.insert((record.study_key, record.digest)) {
            return Ok(false);
        }
        drop(seen);
        let bytes = record.encode();
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(&bytes)?;
        mwc_obs::metrics::counter_add("studydb.appends", 1);
        Ok(true)
    }

    /// Number of decodable records on disk.
    pub fn len(&self) -> usize {
        self.records().len()
    }

    /// Whether the database holds no decodable records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The process-wide database named by [`STUDY_DB_ENV`], opened on first
/// use (later env changes are not observed). `None` when the variable
/// is unset, empty, or the file cannot be opened (counted in
/// `studydb.errors`).
pub fn global() -> Option<&'static StudyDb> {
    static GLOBAL: OnceLock<Option<StudyDb>> = OnceLock::new();
    GLOBAL
        .get_or_init(|| {
            let path = std::env::var(STUDY_DB_ENV).ok().filter(|p| !p.is_empty())?;
            match StudyDb::open(&path) {
                Ok(db) => Some(db),
                Err(_) => {
                    mwc_obs::metrics::counter_add("studydb.errors", 1);
                    None
                }
            }
        })
        .as_ref()
}

/// Persist a completed study into the global database, if one is
/// configured. Called by the stage executor; never fails the study.
pub(crate) fn record_completed(
    spec: &StudySpec,
    study: &Characterization,
    exec: &str,
    elapsed: Duration,
) {
    let Some(db) = global() else {
        return;
    };
    let record = StudyRecord::new(spec, study, exec, elapsed);
    if db.append(&record).is_err() {
        mwc_obs::metrics::counter_add("studydb.errors", 1);
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(bytes);
    h.finish()
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Offset of the next record magic at or after `from`.
fn find_magic(bytes: &[u8], from: usize) -> Option<usize> {
    if from >= bytes.len() {
        return None;
    }
    bytes[from..]
        .windows(RECORD_MAGIC.len())
        .position(|w| w == RECORD_MAGIC)
        .map(|p| from + p)
}

/// Parse one record starting at a magic; returns the record and the
/// total bytes consumed. `None` for torn/corrupt/incompatible spans.
fn parse_record(bytes: &[u8]) -> Option<(StudyRecord, usize)> {
    let header = 4 + 4 + 8;
    if bytes.len() < header {
        return None;
    }
    if le_u32(&bytes[4..8]) != RECORD_VERSION {
        return None;
    }
    let len = le_u64(&bytes[8..16]);
    if len > MAX_RECORD {
        return None;
    }
    let len = len as usize;
    let total = header + len + 8;
    if bytes.len() < total {
        return None;
    }
    let payload = &bytes[header..header + len];
    if le_u64(&bytes[header + len..total]) != fnv64(payload) {
        return None;
    }
    let record = StudyRecord::decode(payload)?;
    Some((record, total))
}
