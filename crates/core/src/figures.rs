//! Data series behind Figures 1–7.

use mwc_analysis::cluster::{hierarchical, Clustering, Dendrogram, Linkage};
use mwc_analysis::error::AnalysisError;
use mwc_analysis::subset::incremental_distances;
use mwc_analysis::validation::ValidationSweep;
use mwc_profiler::timeseries::TimeSeries;

use crate::cache::StudyCache;
use crate::pipeline::Characterization;
use crate::subsets::Subset;

/// Figure 1: the five aggregate metrics per benchmark, with the cluster
/// group each benchmark belongs to, plus each metric's study-wide average
/// (the dashed lines).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1 {
    /// Per-unit rows: (name, cluster-label name, [IC, IPC, cache MPKI,
    /// branch MPKI, runtime]).
    pub rows: Vec<(String, &'static str, [f64; 5])>,
    /// Study-wide mean of each metric (the dashed average lines).
    pub averages: [f64; 5],
}

/// Compute the Figure 1 data.
pub fn fig1(study: &Characterization) -> Fig1 {
    let rows: Vec<(String, &'static str, [f64; 5])> = study
        .profiles()
        .iter()
        .map(|p| {
            (
                p.name.clone(),
                p.label.name(),
                [
                    p.metrics.instruction_count,
                    p.metrics.ipc,
                    p.metrics.cache_mpki,
                    p.metrics.branch_mpki,
                    p.metrics.runtime_seconds,
                ],
            )
        })
        .collect();
    let n = rows.len() as f64;
    let mut averages = [0.0f64; 5];
    for (_, _, vals) in &rows {
        for (a, v) in averages.iter_mut().zip(vals.iter()) {
            *a += v;
        }
    }
    for a in &mut averages {
        *a /= n;
    }
    Fig1 { rows, averages }
}

/// The six temporal metrics of Figure 2 / Table IV, in panel order.
pub const FIG2_METRICS: [&str; 6] = [
    "CPU Load",
    "GPU Load",
    "% Shaders Busy",
    "% GPU Bus Busy",
    "AIE Load",
    "Used Memory",
];

/// Figure 2: per benchmark, the six metrics over normalized runtime,
/// normalized to `[0, 1]` against the *study-wide* extrema of each metric
/// and resampled onto a fixed number of bins.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// Resample resolution (bins of normalized runtime).
    pub bins: usize,
    /// Per-unit rows: (name, six normalized series in [`FIG2_METRICS`]
    /// order).
    pub rows: Vec<(String, [TimeSeries; 6])>,
}

/// Compute the Figure 2 data at the given resample resolution.
pub fn fig2(study: &Characterization, bins: usize) -> Fig2 {
    // Study-wide extrema per metric (the paper normalizes against the
    // highest value recorded across all benchmarks).
    fn extract(p: &crate::pipeline::UnitProfile, m: usize) -> &TimeSeries {
        match m {
            0 => &p.series.cpu_load,
            1 => &p.series.gpu_load,
            2 => &p.series.shaders_busy,
            3 => &p.series.bus_busy,
            4 => &p.series.aie_load,
            _ => &p.series.memory_fraction,
        }
    }
    let mut lo = [f64::INFINITY; 6];
    let mut hi = [f64::NEG_INFINITY; 6];
    for p in study.profiles() {
        for m in 0..6 {
            let s = extract(p, m);
            lo[m] = lo[m].min(s.min());
            hi[m] = hi[m].max(s.max());
        }
    }
    let rows = study
        .profiles()
        .iter()
        .map(|p| {
            let series = std::array::from_fn(|m| {
                extract(p, m)
                    .normalized_against(lo[m], hi[m])
                    .resample(bins)
            });
            (p.name.clone(), series)
        })
        .collect();
    Fig2 { bins, rows }
}

/// Figure 3: per benchmark, the three per-cluster load series quantized
/// into the four load levels (rendered as heat rows).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3 {
    /// Resample resolution.
    pub bins: usize,
    /// Per-unit rows: (name, [little, mid, big] load series).
    pub rows: Vec<(String, [TimeSeries; 3])>,
}

/// Compute the Figure 3 data at the given resample resolution.
///
/// Loads are normalized per metric against the study-wide maximum, exactly
/// as the paper's "normalized CPU core load metrics".
pub fn fig3(study: &Characterization, bins: usize) -> Fig3 {
    fn extract3(p: &crate::pipeline::UnitProfile, c: usize) -> &TimeSeries {
        match c {
            0 => &p.series.little_load,
            1 => &p.series.mid_load,
            _ => &p.series.big_load,
        }
    }
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in study.profiles() {
        for (c, h) in hi.iter_mut().enumerate() {
            *h = h.max(extract3(p, c).max());
        }
    }
    let rows = study
        .profiles()
        .iter()
        .map(|p| {
            let series = std::array::from_fn(|c| {
                extract3(p, c)
                    .normalized_against(0.0, hi[c].max(1e-9))
                    .resample(bins)
            });
            (p.name.clone(), series)
        })
        .collect();
    Fig3 { bins, rows }
}

/// Figure 4: the validation sweep for all three algorithms and all four
/// measures over k = 2..=6 — the default candidate range of the `clValid`
/// R package whose methodology (internal + stability validation) the paper
/// follows, and a sensible span for 18 observations.
pub fn fig4(study: &Characterization) -> Result<ValidationSweep, AnalysisError> {
    fig4_range(study, 2, 6)
}

/// Figure 4 over a custom cluster-count range (inclusive). Served from
/// the process-wide [`StudyCache`] keyed by the feature matrix digest, so
/// repeated sweeps over the same study warm-start.
pub fn fig4_range(
    study: &Characterization,
    k_min: usize,
    k_max: usize,
) -> Result<ValidationSweep, AnalysisError> {
    let features = StudyCache::global().features(study)?;
    let ks: Vec<usize> = (k_min..=k_max).collect();
    StudyCache::global().sweep(&features.clustering, &ks)
}

/// Figure 5: the hierarchical clustering dendrogram (Ward linkage) over
/// the normalized feature matrix.
pub fn fig5(study: &Characterization) -> Result<Dendrogram, AnalysisError> {
    let features = StudyCache::global().features(study)?;
    hierarchical(&features.clustering, Linkage::Ward)
}

/// Figure 6: the k-means clustering at k = 5 (PAM produces the same
/// partition; see the paper's §VI-A).
pub fn fig6(study: &Characterization) -> Result<Clustering, AnalysisError> {
    let features = StudyCache::global().features(study)?;
    mwc_analysis::cluster::kmeans(&features.clustering, 5, 42)
}

/// Figure 7: the incremental total-minimum-Euclidean-distance curves for
/// the given subsets (one curve per subset, each of length 18 — subset
/// members first, then the greedy tail). Fails with
/// [`AnalysisError::EmptyStudy`] on a fully degraded study.
pub fn fig7(
    study: &Characterization,
    subsets: &[Subset],
) -> Result<Vec<(String, Vec<f64>)>, AnalysisError> {
    let features = StudyCache::global().features(study)?;
    Ok(subsets
        .iter()
        .map(|s| {
            (
                s.kind.name().to_owned(),
                incremental_distances(&features.representativeness, &s.indices),
            )
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subsets::select_subset;
    use mwc_soc::config::SocConfig;

    fn study() -> Characterization {
        Characterization::run(SocConfig::snapdragon_888(), 7, 1)
    }

    #[test]
    fn fig1_has_all_units_and_averages() {
        let f = fig1(&study());
        assert_eq!(f.rows.len(), 18);
        assert!(f.averages[0] > 0.0, "mean IC positive");
        assert!(f.averages[4] > 200.0, "mean runtime > 200 s (§V-A)");
    }

    #[test]
    fn fig2_series_are_normalized_and_binned() {
        let f = fig2(&study(), 50);
        assert_eq!(f.rows.len(), 18);
        for (name, series) in &f.rows {
            for s in series {
                assert_eq!(s.len(), 50, "{name}");
                assert!(s.max() <= 1.0 + 1e-9, "{name}");
                assert!(s.min() >= -1e-9, "{name}");
            }
        }
    }

    #[test]
    fn fig3_rows_cover_three_clusters() {
        let f = fig3(&study(), 40);
        assert_eq!(f.rows.len(), 18);
        for (_, series) in &f.rows {
            assert_eq!(series.len(), 3);
        }
    }

    #[test]
    fn fig5_dendrogram_has_17_merges() {
        let d = fig5(&study()).expect("fig5 on a full study");
        assert_eq!(d.merges().len(), 17);
    }

    #[test]
    fn fig6_produces_five_clusters() {
        let c = fig6(&study()).expect("fig6 on a full study");
        assert_eq!(c.k(), 5);
        assert_eq!(c.len(), 18);
    }

    #[test]
    fn fig7_curves_are_monotone_nonincreasing() {
        let s = study();
        let curves = fig7(&s, &[select_subset(&s)]).expect("fig7 on a full study");
        assert_eq!(curves.len(), 1);
        let curve = &curves[0].1;
        assert_eq!(curve.len(), 18);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
        assert!(curve.last().expect("non-empty curve").abs() < 1e-9);
    }
}
