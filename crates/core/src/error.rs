//! Typed errors for the capture → derive → pipeline hot path.
//!
//! Extends the style of [`mwc_soc::error::SocError`]: small enums with
//! `Display` diagnostics, so binaries can exit with a clean message
//! instead of a panic backtrace.

use std::fmt;

use mwc_analysis::error::AnalysisError;
use mwc_profiler::faults::CaptureError;
use mwc_soc::error::SocError;

/// Any failure of the characterization pipeline or the analyses and
/// exports layered on top of it.
#[derive(Debug)]
pub enum PipelineError {
    /// Platform configuration or engine construction failed.
    Soc(SocError),
    /// A unit's capture was exhausted or the fault config was invalid.
    Capture(CaptureError),
    /// A downstream statistical analysis failed.
    Analysis(AnalysisError),
    /// Every unit failed to capture — there is no study to analyse.
    StudyEmpty {
        /// Number of units the study requested.
        requested: usize,
    },
    /// A study spec selected a unit name absent from the registry.
    UnknownUnit(String),
    /// Writing results to disk failed.
    Io(std::io::Error),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Soc(e) => write!(f, "platform error: {e}"),
            PipelineError::Capture(e) => write!(f, "capture error: {e}"),
            PipelineError::Analysis(e) => write!(f, "analysis error: {e}"),
            PipelineError::StudyEmpty { requested } => {
                write!(f, "study empty: all {requested} units failed to capture")
            }
            PipelineError::UnknownUnit(name) => {
                write!(f, "unknown unit: {name:?} is not in the registry")
            }
            PipelineError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Soc(e) => Some(e),
            PipelineError::Capture(e) => Some(e),
            PipelineError::Analysis(e) => Some(e),
            PipelineError::StudyEmpty { .. } => None,
            PipelineError::UnknownUnit(_) => None,
            PipelineError::Io(e) => Some(e),
        }
    }
}

impl From<SocError> for PipelineError {
    fn from(e: SocError) -> Self {
        PipelineError::Soc(e)
    }
}

impl From<CaptureError> for PipelineError {
    fn from(e: CaptureError) -> Self {
        PipelineError::Capture(e)
    }
}

impl From<AnalysisError> for PipelineError {
    fn from(e: AnalysisError) -> Self {
        PipelineError::Analysis(e)
    }
}

impl From<std::io::Error> for PipelineError {
    fn from(e: std::io::Error) -> Self {
        PipelineError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_prefixed_by_layer() {
        let e = PipelineError::StudyEmpty { requested: 18 };
        assert!(e.to_string().contains("all 18 units"));
        let e: PipelineError = AnalysisError::EmptyInput("matrix".into()).into();
        assert!(e.to_string().starts_with("analysis error"));
    }

    #[test]
    fn sources_are_preserved() {
        use std::error::Error;
        let e: PipelineError =
            CaptureError::InvalidFaultConfig("dropout_rate must be in [0, 1]".into()).into();
        assert!(e.source().is_some());
        assert!(PipelineError::StudyEmpty { requested: 1 }
            .source()
            .is_none());
    }
}
