//! The paper's nine numbered observations as checkable predicates.
//!
//! Each check inspects the simulated study and reports whether the
//! qualitative claim holds, together with the quantitative evidence. These
//! are the reproduction's regression harness: if a model change breaks an
//! observation, the corresponding check fails.

use mwc_profiler::capture::{Capture, Profiler, SeriesKey};
use mwc_soc::config::SocConfig;
use mwc_soc::engine::Engine;
use mwc_soc::gpu::GraphicsApi;
use mwc_workloads::registry::ClusterLabel;
use mwc_workloads::suites::gfxbench;

use crate::pipeline::{Characterization, UnitProfile};

/// Result of checking one observation.
#[derive(Debug, Clone, PartialEq)]
pub struct ObservationResult {
    /// Observation number (1–9) as the paper numbers them.
    pub id: u8,
    /// The paper's claim, abbreviated.
    pub statement: &'static str,
    /// Whether the claim holds on the simulated study.
    pub holds: bool,
    /// Quantitative evidence backing the verdict.
    pub evidence: String,
}

/// The benchmarks with explicit multi-core workloads (Observations #1/#9).
const MULTICORE_UNITS: [&str; 4] = ["Aitutu", "Antutu CPU", "Geekbench 6 CPU", "Geekbench 5 CPU"];

/// Check all nine observations against a study.
pub fn check_all(study: &Characterization) -> Vec<ObservationResult> {
    vec![
        obs1(study),
        obs2(),
        obs3(study),
        obs4(study),
        obs5(study),
        obs6(study),
        obs7(study),
        obs8(study),
        obs9(study),
    ]
}

/// Fraction of a series above 0.5 ("high load" per the paper's colouring).
fn high_fraction(series: &mwc_profiler::timeseries::TimeSeries) -> f64 {
    series.fraction_above(0.5)
}

/// Verdict when a unit an observation needs was excluded from a degraded
/// study: the claim can be neither confirmed nor refuted.
fn inconclusive(id: u8, statement: &'static str, missing: &str) -> ObservationResult {
    ObservationResult {
        id,
        statement,
        holds: false,
        evidence: format!("inconclusive: unit '{missing}' was excluded from this study"),
    }
}

/// Observation #1: benchmarks with multi-core components show high CPU
/// load levels — the multi-core halves of Geekbench CPU spike well above
/// the ~30%-load single-core halves.
fn obs1(study: &Characterization) -> ObservationResult {
    const STATEMENT: &str = "Multi-core/multi-threaded components show high CPU load levels";
    let mut evidence = String::new();
    let mut holds = true;
    for name in ["Geekbench 5 CPU", "Geekbench 6 CPU"] {
        let Some(p) = study.profile(name) else {
            return inconclusive(1, STATEMENT, name);
        };
        let values = &p.series.cpu_load.values;
        let half = values.len() / 2;
        let single: f64 = values[..half].iter().sum::<f64>() / half as f64;
        let multi: f64 = values[half..].iter().sum::<f64>() / (values.len() - half) as f64;
        holds &= multi > 1.5 * single;
        evidence.push_str(&format!(
            "{name}: single-core {:.2}, multi-core {:.2}; ",
            single, multi
        ));
    }
    // Antutu CPU's GEMM uptick at the start.
    let Some(antutu) = study.profile("Antutu CPU") else {
        return inconclusive(1, STATEMENT, "Antutu CPU");
    };
    let v = &antutu.series.cpu_load.values;
    let head = &v[..v.len() / 8];
    let gemm: f64 = head.iter().sum::<f64>() / head.len() as f64;
    let overall = antutu.series.cpu_load.mean();
    holds &= gemm > overall;
    evidence.push_str(&format!(
        "Antutu CPU GEMM head {gemm:.2} vs mean {overall:.2}"
    ));
    ObservationResult {
        id: 1,
        statement: STATEMENT,
        holds,
        evidence,
    }
}

/// Observation #2: GFXBench OpenGL tests have higher GPU load than the
/// matching Vulkan tests (paper: +9.26%). Runs the API-paired Aztec Ruins
/// micro-benchmarks individually on a fresh engine.
fn obs2() -> ObservationResult {
    let engine = Engine::new(SocConfig::snapdragon_888(), 22).expect("valid preset");
    let mut profiler = Profiler::new(engine, 22);
    let tests = gfxbench::high_level_tests();
    let mut gl_loads = Vec::new();
    let mut vk_loads = Vec::new();
    // Compare only the on-screen API-paired variants of the same scene:
    // the heavy off-screen/4K variants saturate the GPU under either API,
    // compressing the gap to zero.
    for t in tests
        .iter()
        .filter(|t| t.name.contains("Aztec") && t.target == mwc_soc::gpu::RenderTarget::OnScreen)
    {
        let capture: Vec<Capture> = profiler.capture_runs(&t.workload(20.0), 1);
        let load = capture[0].series(SeriesKey::GpuLoad).mean();
        match t.api {
            GraphicsApi::OpenGlEs => gl_loads.push(load),
            GraphicsApi::Vulkan => vk_loads.push(load),
        }
    }
    let gl: f64 = gl_loads.iter().sum::<f64>() / gl_loads.len() as f64;
    let vk: f64 = vk_loads.iter().sum::<f64>() / vk_loads.len() as f64;
    let gap = (gl / vk - 1.0) * 100.0;
    ObservationResult {
        id: 2,
        statement: "Vulkan benchmarks have lower GPU load than OpenGL ones",
        holds: gap > 5.0 && gap < 15.0,
        evidence: format!("OpenGL GPU load {gl:.3} vs Vulkan {vk:.3} (+{gap:.2}%, paper: +9.26%)"),
    }
}

/// Observation #3: GPU shader use is not limited to graphics benchmarks —
/// PCMark Work sustains periods with most shaders busy.
fn obs3(study: &Characterization) -> ObservationResult {
    const STATEMENT: &str = "GPU resources are not used exclusively by GPU-related benchmarks";
    let Some(work) = study.profile("PCMark Work") else {
        return inconclusive(3, STATEMENT, "PCMark Work");
    };
    let sustained = high_fraction(&work.series.shaders_busy);
    ObservationResult {
        id: 3,
        statement: STATEMENT,
        holds: sustained > 0.25,
        evidence: format!(
            "PCMark Work keeps >50% of shaders busy for {:.0}% of its runtime",
            sustained * 100.0
        ),
    }
}

/// Observation #4: newer benchmarks are not always more computationally
/// intensive — Antutu GPU's CPU-load spikes fall outside Swordsman (the
/// newest scene), and Swordsman has the lowest scene CPU load.
fn obs4(study: &Characterization) -> ObservationResult {
    const STATEMENT: &str = "Newer benchmarks are not always more computationally intensive";
    let Some(p) = study.profile("Antutu GPU") else {
        return inconclusive(4, STATEMENT, "Antutu GPU");
    };
    let v = &p.series.cpu_load.values;
    let n = v.len();
    let mean_of = |a: f64, b: f64| -> f64 {
        let s = (a * n as f64) as usize;
        let e = (((b * n as f64) as usize).max(s + 1)).min(n);
        v[s..e].iter().sum::<f64>() / (e - s) as f64
    };
    // Scene intervals per the paper: Swordsman 0–15%, Refinery ≈17–45%,
    // Terracotta ≈47–96%.
    let swordsman = mean_of(0.0, 0.15);
    let refinery = mean_of(0.17, 0.45);
    let terracotta = mean_of(0.47, 0.94);
    let holds = swordsman < refinery && refinery < terracotta;
    ObservationResult {
        id: 4,
        statement: STATEMENT,
        holds,
        evidence: format!(
            "Antutu GPU CPU load: Swordsman {swordsman:.2}, Refinery {refinery:.2}, \
             Terracotta {terracotta:.2} (paper: 28% / 31% / 35%)"
        ),
    }
}

/// Observation #5: benchmarks make little use of the AIE — average load
/// around 5%, with GFXBench Special the strongest user.
fn obs5(study: &Characterization) -> ObservationResult {
    let mean_aie: f64 = study
        .profiles()
        .iter()
        .map(|p| p.series.aie_load.mean())
        .sum::<f64>()
        / study.profiles().len() as f64;
    let Some(strongest) = study.profiles().iter().max_by(|a, b| {
        a.series
            .aie_load
            .mean()
            .total_cmp(&b.series.aie_load.mean())
    }) else {
        return inconclusive(5, "Benchmarks make little use of AIE", "any");
    };
    let holds = mean_aie < 0.12 && mean_aie > 0.005;
    ObservationResult {
        id: 5,
        statement: "Benchmarks make little use of AIE",
        holds,
        evidence: format!(
            "mean AIE load {:.1}% (paper: 5%); strongest user: {} at {:.1}%",
            mean_aie * 100.0,
            strongest.name,
            strongest.series.aie_load.mean() * 100.0
        ),
    }
}

/// Observation #6: the memory footprint of benchmarks is moderate —
/// average around 21.6% of system memory; GPU benchmarks sit higher, with
/// Antutu GPU holding the usage peak and Wild Life Extreme the highest
/// average.
fn obs6(study: &Characterization) -> ObservationResult {
    let mean_frac: f64 = study
        .profiles()
        .iter()
        .map(|p| p.metrics.memory_used_fraction)
        .sum::<f64>()
        / study.profiles().len() as f64;
    const STATEMENT: &str = "The memory footprint of benchmarks is moderate";
    let peak_unit = study.profiles().iter().max_by(|a, b| {
        a.metrics
            .memory_peak_mib
            .total_cmp(&b.metrics.memory_peak_mib)
    });
    let max_avg_unit = study.profiles().iter().max_by(|a, b| {
        a.metrics
            .memory_used_fraction
            .total_cmp(&b.metrics.memory_used_fraction)
    });
    let (Some(peak_unit), Some(max_avg_unit)) = (peak_unit, max_avg_unit) else {
        return inconclusive(6, STATEMENT, "any");
    };
    let holds = (0.12..=0.32).contains(&mean_frac)
        && peak_unit.name == "Antutu GPU"
        && max_avg_unit.name == "3DMark Wild Life Extreme";
    ObservationResult {
        id: 6,
        statement: STATEMENT,
        holds,
        evidence: format!(
            "mean usage {:.1}% (paper: 21.6%); peak {:.2} GiB in {} (paper: 4.3 GB, Antutu GPU); \
             highest average {:.1}% in {} (paper: 34.5%, Wild Life Extreme)",
            mean_frac * 100.0,
            peak_unit.metrics.memory_peak_mib / 1024.0,
            peak_unit.name,
            max_avg_unit.metrics.memory_used_fraction * 100.0,
            max_avg_unit.name
        ),
    }
}

/// Units whose CPU side meaningfully uses the big/mid clusters at all.
fn actively_uses_big_or_mid(p: &UnitProfile) -> bool {
    high_fraction(&p.series.big_load) + high_fraction(&p.series.mid_load) > 0.02
}

/// Observation #7: the big core sustains high load longer than the mids in
/// every active benchmark except Aitutu.
fn obs7(study: &Characterization) -> ObservationResult {
    let mut exceptions = Vec::new();
    for p in study
        .profiles()
        .iter()
        .filter(|p| actively_uses_big_or_mid(p))
    {
        let big = high_fraction(&p.series.big_load);
        let mid = high_fraction(&p.series.mid_load);
        if mid > big {
            exceptions.push(p.name.clone());
        }
    }
    let holds = exceptions == vec!["Aitutu".to_owned()];
    ObservationResult {
        id: 7,
        statement: "Bigger cores have higher load levels than medium cores",
        holds,
        evidence: format!(
            "units where mid sustains high load longer than big: {exceptions:?} \
             (paper: only Aitutu)"
        ),
    }
}

/// Observation #8: GPU tests use mostly the energy-efficient cores — the
/// big and mid clusters see fewer instances of load than the littles.
/// "Instances of load" counts samples above the first load level (25%),
/// the same quantization Figure 3 colours.
fn obs8(study: &Characterization) -> ObservationResult {
    let mut evidence = String::new();
    let mut holds = true;
    for p in study.profiles().iter().filter(|p| {
        matches!(
            p.label,
            ClusterLabel::IntenseGraphics | ClusterLabel::GpuCompute
        )
    }) {
        let little = p.series.little_load.fraction_above(0.25);
        let big_mid =
            p.series.big_load.fraction_above(0.25) + p.series.mid_load.fraction_above(0.25);
        if big_mid >= little {
            holds = false;
            evidence.push_str(&format!(
                "{} violates (big+mid {big_mid:.2} ≥ little {little:.2}); ",
                p.name
            ));
        }
    }
    if evidence.is_empty() {
        evidence = "all GPU tests load the little cluster more than big+mid".to_owned();
    }
    ObservationResult {
        id: 8,
        statement: "GPU tests tend to use only the energy-efficient cores",
        holds,
        evidence,
    }
}

/// Observation #9: only the explicitly multi-core benchmarks load all
/// three clusters concurrently.
fn obs9(study: &Characterization) -> ObservationResult {
    let consistent: Vec<String> = study
        .profiles()
        .iter()
        .filter(|p| {
            // "Consistent load on all CPU core clusters": every cluster is
            // above the first load level for more than a quarter of the
            // benchmark's execution.
            [
                &p.series.little_load,
                &p.series.mid_load,
                &p.series.big_load,
            ]
            .iter()
            .all(|s| s.fraction_above(0.25) > 0.25)
        })
        .map(|p| p.name.clone())
        .collect();
    let mut expected: Vec<String> = MULTICORE_UNITS.iter().map(|s| s.to_string()).collect();
    expected.sort();
    let mut got = consistent.clone();
    got.sort();
    ObservationResult {
        id: 9,
        statement: "Workloads tend not to exploit more than one type of core concurrently",
        holds: got == expected,
        evidence: format!(
            "units loading all clusters: {consistent:?} (paper: {MULTICORE_UNITS:?})"
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One shared quick study: observation checks read series shapes, which
    // a single run captures fine.
    fn study() -> Characterization {
        Characterization::run(SocConfig::snapdragon_888(), 7, 1)
    }

    #[test]
    fn all_nine_observations_are_checked() {
        let results = check_all(&study());
        assert_eq!(results.len(), 9);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.id as usize, i + 1);
            assert!(!r.evidence.is_empty());
        }
    }

    #[test]
    fn observation_2_matches_paper_gap() {
        let r = obs2();
        assert!(r.holds, "{}", r.evidence);
    }

    #[test]
    fn observation_5_aie_is_lightly_used() {
        let r = obs5(&study());
        assert!(r.holds, "{}", r.evidence);
    }
}
