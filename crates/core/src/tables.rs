//! Tables III, V and VI of the paper.

use mwc_analysis::cluster::Clustering;
use mwc_analysis::error::AnalysisError;
use mwc_analysis::matrix::Matrix;
use mwc_analysis::stats::correlation_matrix;
use mwc_report::heat::level_histogram;
use mwc_report::table::{fmt, Table};

use crate::cache::StudyCache;
use crate::features::FIG1_METRICS;
use crate::pipeline::Characterization;
use crate::subsets::{naive_subset, select_plus_gpu_subset, select_subset, Subset};

/// Table III: the Pearson correlation matrix of the five Figure-1 metrics.
/// Fails with [`AnalysisError::EmptyStudy`] on a fully degraded study.
pub fn table3_matrix(study: &Characterization) -> Result<Matrix, AnalysisError> {
    let features = StudyCache::global().features(study)?;
    Ok(correlation_matrix(&features.fig1))
}

/// Render Table III as text (lower triangle, as the paper prints it).
pub fn table3_text(study: &Characterization) -> Result<String, AnalysisError> {
    let c = table3_matrix(study)?;
    let mut headers: Vec<String> = vec![String::new()];
    headers.extend(FIG1_METRICS.iter().map(|s| s.to_string()));
    let mut t = Table::new(headers);
    for (i, metric) in FIG1_METRICS.iter().enumerate().take(c.rows()) {
        let mut row = vec![metric.to_string()];
        for j in 0..=i {
            row.push(fmt(c.get(i, j), 3));
        }
        t.row(row);
    }
    Ok(t.render())
}

/// Table V data: for each cluster (little, mid, big), the average fraction
/// of execution time spent in each of the four load levels, across all
/// units.
pub fn table5_data(study: &Characterization) -> [[f64; 4]; 3] {
    let mut totals = [[0.0f64; 4]; 3];
    let n = study.profiles().len() as f64;
    for p in study.profiles() {
        let rows = [
            level_histogram(&p.series.little_load.values),
            level_histogram(&p.series.mid_load.values),
            level_histogram(&p.series.big_load.values),
        ];
        for (t, r) in totals.iter_mut().zip(rows.iter()) {
            for (acc, v) in t.iter_mut().zip(r.iter()) {
                *acc += v;
            }
        }
    }
    totals.map(|row| row.map(|v| v / n))
}

/// Render Table V as text.
pub fn table5_text(study: &Characterization) -> String {
    let data = table5_data(study);
    let mut t = Table::new(vec![
        "CPU Cluster",
        "0% - 25%",
        "25% - 50%",
        "50% - 75%",
        "75% - 100%",
    ]);
    for (name, row) in ["CPU Little", "CPU Mid", "CPU Big"].iter().zip(data.iter()) {
        let mut cells = vec![name.to_string()];
        cells.extend(row.iter().map(|v| format!("{:.0}%", v * 100.0)));
        t.row(cells);
    }
    t.render()
}

/// Table VI data: running time and reduction for the original set and the
/// three subsets.
#[derive(Debug, Clone, PartialEq)]
pub struct Table6 {
    /// Total running time of all 18 units, in seconds.
    pub original_seconds: f64,
    /// (subset, running time seconds, reduction percent) rows.
    pub rows: Vec<(Subset, f64, f64)>,
}

/// Compute Table VI. The Naive subset requires the clustering result (one
/// benchmark per cluster); pass the clustering from Figure 5/6.
pub fn table6(study: &Characterization, clustering: &Clustering) -> Table6 {
    let original_seconds: f64 = study.runtimes().iter().sum();
    let rows = vec![
        naive_subset(study, clustering),
        select_subset(study),
        select_plus_gpu_subset(study),
    ]
    .into_iter()
    .map(|s| {
        let time = s.running_time(study);
        let red = s.reduction_percent(study);
        (s, time, red)
    })
    .collect();
    Table6 {
        original_seconds,
        rows,
    }
}

/// Render Table VI as text.
pub fn table6_text(study: &Characterization, clustering: &Clustering) -> String {
    let data = table6(study, clustering);
    let mut t = Table::new(vec![
        "",
        "Original Set",
        "Naive Set",
        "Select Set",
        "Select + GPU Set",
    ]);
    let mut times = vec![
        "Running Time (sec)".to_string(),
        fmt(data.original_seconds, 1),
    ];
    let mut reds = vec!["Running Time Reduction".to_string(), "-".to_string()];
    for (_, time, red) in &data.rows {
        times.push(fmt(*time, 2));
        reds.push(format!("{:.2}%", red));
    }
    t.row(times);
    t.row(reds);
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_soc::config::SocConfig;

    fn study() -> Characterization {
        Characterization::run(SocConfig::snapdragon_888(), 7, 1)
    }

    fn ground_truth(study: &Characterization) -> Clustering {
        let labels: Vec<usize> = study.profiles().iter().map(|p| p.label as usize).collect();
        Clustering::new(labels, 5).expect("18 labels, 5 clusters")
    }

    #[test]
    fn table3_is_a_correlation_matrix() {
        let c = table3_matrix(&study()).expect("table3 on a full study");
        assert_eq!(c.rows(), 5);
        for i in 0..5 {
            assert!((c.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..5 {
                assert!(c.get(i, j).abs() <= 1.0 + 1e-12);
            }
        }
    }

    #[test]
    fn table3_text_prints_lower_triangle() {
        let s = table3_text(&study()).expect("table3 on a full study");
        assert!(s.contains("IC"));
        assert!(s.contains("Runtime"));
        assert!(s.lines().count() >= 7);
    }

    #[test]
    fn table5_rows_sum_to_one() {
        let data = table5_data(&study());
        for row in data {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "{row:?}");
        }
    }

    #[test]
    fn table5_mid_cluster_is_mostly_idle() {
        // Table V: CPU Mid spends 76% of time in the 0–25% band.
        let data = table5_data(&study());
        let mid_idle = data[1][0];
        assert!(mid_idle > 0.5, "mid cluster mostly idle, got {mid_idle}");
    }

    #[test]
    fn table6_matches_paper_totals() {
        let s = study();
        let t = table6(&s, &ground_truth(&s));
        assert!((t.original_seconds - 4429.5).abs() < 1.0);
        assert_eq!(t.rows.len(), 3);
        // Reductions in paper order: 90.93%, 80.47%, 74.98%.
        assert!((t.rows[0].2 - 90.93).abs() < 0.3);
        assert!((t.rows[1].2 - 80.47).abs() < 0.3);
        assert!((t.rows[2].2 - 74.98).abs() < 0.3);
    }

    #[test]
    fn table6_text_renders_both_rows() {
        let s = study();
        let text = table6_text(&s, &ground_truth(&s));
        assert!(text.contains("Running Time (sec)"));
        assert!(text.contains('%'));
    }
}
