//! Persistent, content-addressed result cache with incremental recompute.
//!
//! The paper's methodology re-evaluates the same `(workload set, seed,
//! run count, platform, fault model)` characterizations over and over —
//! every figure/table binary, every test pass and every validation sweep
//! starts from the identical study. This module memoizes those results so
//! only the *first* invocation simulates; warm runs deserialize and are
//! bit-identical (asserted via [`Characterization::digest`]).
//!
//! ## Layers
//!
//! * **Memory** — an intra-process map from cache key to shared
//!   [`Characterization`] / [`ValidationSweep`] instances.
//! * **Disk** — one file per entry under the cache directory,
//!   `study-<key>.mwcc` / `sweep-<key>.mwcc`, written atomically (temp
//!   file + rename) so readers never observe a partial entry.
//!
//! ## Keys
//!
//! Entries are addressed by an FNV-1a digest over everything that can
//! influence the result: the schema version and crate version, the study
//! protocol (seed, run count), [`SocConfig::content_digest`],
//! [`FaultConfig::content_digest`] and the unit registry (names, suites,
//! labels). Worker-thread count is deliberately *excluded*: results are
//! bit-identical at any parallelism (see `mwc_parallel`), so thread count
//! must not fragment the key space.
//!
//! ## Corruption handling
//!
//! A disk entry is trusted only if it fully parses *and* its recomputed
//! content digest matches the stored one. Anything else — bad magic,
//! version skew, short file, flipped byte — is treated as a plain miss:
//! the entry is deleted, the result recomputed and re-stored. Corrupt
//! entries can degrade a warm run to a cold one but can never surface
//! wrong numbers or errors.

use std::collections::HashMap;
use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::SystemTime;

use mwc_analysis::error::AnalysisError;
use mwc_analysis::matrix::Matrix;
use mwc_analysis::validation::{sweep as run_sweep, Algorithm, SweepPoint, ValidationSweep};
use mwc_profiler::derive::BenchmarkMetrics;
use mwc_profiler::faults::{CaptureHealth, FaultConfig};
use mwc_profiler::timeseries::TimeSeries;
use mwc_soc::config::SocConfig;
use mwc_workloads::registry::{all_units, ClusterLabel, Suite};

use crate::error::PipelineError;
use crate::exec::UnitArtifact;
use crate::features::FeatureSet;
use crate::pipeline::{
    Characterization, DegradationReport, FailedUnit, Fnv1a, UnitProfile, UnitSeries,
};
use crate::spec::StudySpec;

/// Set to `off` / `0` / `false` to disable both cache layers.
pub const CACHE_MODE_ENV: &str = "MWC_CACHE";
/// Overrides the on-disk cache directory.
pub const CACHE_DIR_ENV: &str = "MWC_CACHE_DIR";
/// Overrides the maximum number of on-disk entries before eviction.
pub const CACHE_MAX_ENV: &str = "MWC_CACHE_MAX";
/// Set to `off` / `0` / `false` to disable the per-unit stage-artifact
/// layer (the whole-study and sweep layers stay active). With stage
/// entries off a one-knob change re-simulates the full study, as the
/// pre-stage-graph pipeline did.
pub const CACHE_STAGES_ENV: &str = "MWC_CACHE_STAGES";

/// Version of the serialized entry format *and* of the data model it
/// memoizes. Bump on any change to the simulation, capture, merge or
/// analysis arithmetic — or to the encoding itself — so stale entries
/// from older builds are invalidated instead of replayed.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// Default cap on on-disk entries (oldest-modified evicted first).
const DEFAULT_MAX_ENTRIES: usize = 64;

const STUDY_MAGIC: &[u8; 4] = b"MWCC";
const SWEEP_MAGIC: &[u8; 4] = b"MWCS";
const UNIT_MAGIC: &[u8; 4] = b"MWCU";

/// The content-addressed key of a study: a stable digest of everything
/// that can change a [`Characterization`]. Stable across processes and
/// machines; changes whenever any keyed input changes.
pub fn study_key(config: &SocConfig, seed: u64, runs: usize, faults: &FaultConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("mwc-study");
    h.write_u64(u64::from(CACHE_SCHEMA_VERSION));
    h.write_str(env!("CARGO_PKG_VERSION"));
    h.write_u64(seed);
    h.write_usize(runs);
    h.write_u64(config.content_digest());
    h.write_u64(faults.content_digest());
    let units = all_units();
    h.write_usize(units.len());
    for u in &units {
        h.write_str(u.name);
        h.write_str(u.suite.name());
        h.write_str(u.label.name());
    }
    h.finish()
}

/// The content-addressed key of a Fig-4 validation sweep over a feature
/// matrix (`matrix_digest` from [`Matrix::digest`]) and a k range. The
/// analysis kernel arithmetic variant (`f64`, or `f32` under the
/// `f32-kernels` feature) is keyed so a sweep cached by one build is never
/// served to a build whose kernels round differently.
pub fn sweep_key(matrix_digest: u64, ks: &[usize]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("mwc-sweep");
    h.write_u64(u64::from(CACHE_SCHEMA_VERSION));
    h.write_str(env!("CARGO_PKG_VERSION"));
    h.write_str(mwc_analysis::KERNEL_VARIANT);
    h.write_u64(matrix_digest);
    h.write_usize(ks.len());
    for &k in ks {
        h.write_usize(k);
    }
    h.finish()
}

/// Counters of what the cache did this process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served from the in-process memory layer.
    pub mem_hits: u64,
    /// Entries deserialized from disk.
    pub disk_hits: u64,
    /// Lookups that had to recompute.
    pub misses: u64,
    /// Entries written to disk.
    pub stores: u64,
    /// Disk entries that failed validation and were discarded.
    pub corrupt_entries: u64,
    /// Disk entries evicted by the entry cap.
    pub evictions: u64,
    /// Disk writes that failed (the result is still returned).
    pub store_failures: u64,
}

impl CacheStats {
    /// Total hits across both layers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// One-line machine-greppable rendering (used by `scripts/verify.sh`).
    pub fn summary(&self) -> String {
        format!(
            "mem_hits={} disk_hits={} misses={} stores={} corrupt={} evictions={} store_failures={}",
            self.mem_hits,
            self.disk_hits,
            self.misses,
            self.stores,
            self.corrupt_entries,
            self.evictions,
            self.store_failures
        )
    }
}

/// A stage of the study graph whose artifacts the cache tracks
/// separately from the legacy study/sweep entries (whose [`CacheStats`]
/// keep their historical meaning).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StageKind {
    /// Per-unit simulation + capture. Owns no entries of its own — it
    /// mirrors the derive hits/misses, so a hit reads as "simulation
    /// skipped" and a miss as "simulation executed".
    Capture,
    /// Per-unit metric/series derivation; owns the stored unit artifact
    /// (a fused capture+derive result — raw captures are never
    /// serialized).
    Derive,
    /// Study-level feature-matrix extraction (memory layer only, keyed
    /// by the study digest).
    Featurize,
    /// Cluster-validation sweeps; mirrors the legacy sweep entries.
    Analyze,
}

impl StageKind {
    /// Every stage, in pipeline order (also the [`StudyCache::stage_stats`]
    /// index order).
    pub const ALL: [StageKind; 4] = [
        StageKind::Capture,
        StageKind::Derive,
        StageKind::Featurize,
        StageKind::Analyze,
    ];

    /// Stable lowercase name, used in the `cache.stage.<name>.*`
    /// observability counters.
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Capture => "capture",
            StageKind::Derive => "derive",
            StageKind::Featurize => "featurize",
            StageKind::Analyze => "analyze",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Per-stage cache counters. Unit-artifact traffic lands here — never in
/// [`CacheStats`] — so the legacy study/sweep numbers stay comparable
/// across versions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStats {
    /// Artifacts served from the in-process memory layer.
    pub mem_hits: u64,
    /// Artifacts deserialized from disk.
    pub disk_hits: u64,
    /// Lookups that had to recompute.
    pub misses: u64,
    /// Artifacts written to disk.
    pub stores: u64,
    /// Disk artifacts that failed validation and were discarded.
    pub corrupt_entries: u64,
    /// Bytes deserialized from disk.
    pub bytes_read: u64,
    /// Bytes written to disk.
    pub bytes_written: u64,
}

impl StageStats {
    /// Total hits across both layers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }
}

/// The two-layer study/sweep cache. Most callers use [`StudyCache::global`]
/// (configured from the environment once per process); tests construct
/// isolated instances with [`StudyCache::with_dir`].
#[derive(Debug)]
pub struct StudyCache {
    enabled: bool,
    stage_entries: bool,
    dir: Option<PathBuf>,
    max_entries: usize,
    studies: Mutex<HashMap<u64, Arc<Characterization>>>,
    /// Secondary index: [`Characterization::digest`] → study key, so a
    /// result can be re-fetched by the digest handed out to clients
    /// (`mwc-server`'s `GET /study/<digest>`).
    by_digest: Mutex<HashMap<u64, u64>>,
    units: Mutex<HashMap<u64, UnitArtifact>>,
    features: Mutex<HashMap<u64, Arc<FeatureSet>>>,
    sweeps: Mutex<HashMap<u64, ValidationSweep>>,
    stats: Mutex<CacheStats>,
    stage_stats: Mutex<[StageStats; 4]>,
}

impl StudyCache {
    fn new(enabled: bool, dir: Option<PathBuf>, max_entries: usize) -> Self {
        StudyCache {
            enabled,
            stage_entries: enabled,
            dir,
            max_entries,
            studies: Mutex::new(HashMap::new()),
            by_digest: Mutex::new(HashMap::new()),
            units: Mutex::new(HashMap::new()),
            features: Mutex::new(HashMap::new()),
            sweeps: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
            stage_stats: Mutex::new([StageStats::default(); 4]),
        }
    }

    /// Configure from the environment: `MWC_CACHE=off|0|false` disables,
    /// `MWC_CACHE_DIR` overrides the directory (default:
    /// `$XDG_CACHE_HOME/mwc`, then `$HOME/.cache/mwc`, then a `mwc-cache`
    /// directory under the system temp dir), `MWC_CACHE_MAX` caps the
    /// on-disk entry count.
    pub fn from_env() -> Self {
        let off = env::var(CACHE_MODE_ENV)
            .map(|v| {
                let v = v.to_ascii_lowercase();
                v == "off" || v == "0" || v == "false"
            })
            .unwrap_or(false);
        if off {
            return StudyCache::disabled();
        }
        let dir = env::var(CACHE_DIR_ENV)
            .ok()
            .filter(|d| !d.is_empty())
            .map(PathBuf::from)
            .unwrap_or_else(default_dir);
        let max_entries = env::var(CACHE_MAX_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_MAX_ENTRIES);
        let stages_off = env::var(CACHE_STAGES_ENV)
            .map(|v| {
                let v = v.to_ascii_lowercase();
                v == "off" || v == "0" || v == "false"
            })
            .unwrap_or(false);
        let mut cache = StudyCache::new(true, Some(dir), max_entries);
        cache.stage_entries = !stages_off;
        cache
    }

    /// An enabled cache persisting to an explicit directory (tests).
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        StudyCache::new(true, Some(dir.into()), DEFAULT_MAX_ENTRIES)
    }

    /// An enabled cache with no disk layer (intra-process reuse only).
    pub fn in_memory() -> Self {
        StudyCache::new(true, None, DEFAULT_MAX_ENTRIES)
    }

    /// A fully disabled cache: every lookup computes.
    pub fn disabled() -> Self {
        StudyCache::new(false, None, DEFAULT_MAX_ENTRIES)
    }

    /// The process-wide cache, configured from the environment on first
    /// use.
    pub fn global() -> &'static StudyCache {
        static GLOBAL: OnceLock<StudyCache> = OnceLock::new();
        GLOBAL.get_or_init(StudyCache::from_env)
    }

    /// Whether any caching is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The disk directory, if a persistent layer is configured.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Whether the per-unit stage-artifact layer is active (see
    /// [`CACHE_STAGES_ENV`]).
    pub fn stage_entries_enabled(&self) -> bool {
        self.enabled && self.stage_entries
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("cache stats lock poisoned")
    }

    /// A snapshot of the per-stage counters, indexed as [`StageKind::ALL`].
    pub fn stage_stats(&self) -> [StageStats; 4] {
        *self.stage_stats.lock().expect("stage stats lock poisoned")
    }

    /// The counters of one stage.
    pub fn stage(&self, kind: StageKind) -> StageStats {
        self.stage_stats()[kind.index()]
    }

    /// One-line machine-greppable per-stage rendering (used by
    /// `scripts/verify.sh`'s incremental gate): `sims=` counts units whose
    /// simulation actually executed this process, `reused=` counts units
    /// replayed from stage artifacts.
    pub fn stage_summary(&self) -> String {
        let capture = self.stage(StageKind::Capture);
        let derive = self.stage(StageKind::Derive);
        let featurize = self.stage(StageKind::Featurize);
        format!(
            "sims={} reused={} derive_stores={} featurize_hits={} featurize_misses={}",
            capture.misses,
            capture.hits(),
            derive.stores,
            featurize.hits(),
            featurize.misses
        )
    }

    /// Human-readable description of the configuration.
    pub fn describe(&self) -> String {
        match (self.enabled, &self.dir) {
            (false, _) => "off".to_owned(),
            (true, None) => "in-memory only".to_owned(),
            (true, Some(d)) => format!("{} (max {} entries)", d.display(), self.max_entries),
        }
    }

    /// A fault-free study on `config` with the given protocol, served from
    /// the cache when warm (worker count from `MWC_THREADS`; excluded from
    /// the key because results are parallelism-invariant).
    pub fn study(
        &self,
        config: &SocConfig,
        seed: u64,
        runs: usize,
    ) -> Result<Arc<Characterization>, PipelineError> {
        self.study_with_faults(
            config,
            seed,
            runs,
            mwc_parallel::configured_threads(),
            &FaultConfig::default(),
        )
    }

    /// [`StudyCache::study`] with explicit worker count and fault model.
    /// A warm hit is guaranteed bit-identical to the cold computation
    /// (the stored [`Characterization::digest`] is re-verified on load).
    pub fn study_with_faults(
        &self,
        config: &SocConfig,
        seed: u64,
        runs: usize,
        threads: usize,
        faults: &FaultConfig,
    ) -> Result<Arc<Characterization>, PipelineError> {
        let spec = StudySpec::new(config.clone(), seed, runs)
            .with_faults(faults.clone())
            .with_threads(threads);
        self.study_spec(&spec)
    }

    /// The study described by `spec`, served from the cache when warm.
    /// On a miss the staged executor runs *through* this cache, so
    /// per-unit artifacts persisted by earlier, differently-keyed studies
    /// are replayed: after a warm capture, changing one unit's fault
    /// override re-simulates exactly that unit, and an analysis-only
    /// change simulates nothing.
    pub fn study_spec(&self, spec: &StudySpec) -> Result<Arc<Characterization>, PipelineError> {
        self.study_spec_with(crate::exec::global(), spec)
    }

    /// [`StudyCache::study_spec`] with an explicit execution backend —
    /// the seam the fleet tests use to pin a backend without touching
    /// the process-wide `MWC_EXEC` selection.
    pub fn study_spec_with(
        &self,
        exec: &dyn crate::exec::Exec,
        spec: &StudySpec,
    ) -> Result<Arc<Characterization>, PipelineError> {
        if !self.enabled {
            return Ok(Arc::new(crate::stages::execute_with(exec, spec, None)?));
        }
        let key = spec.study_key();
        let mut span = mwc_obs::span("cache.study");
        span.field("key", key);
        if let Some(hit) = self
            .studies
            .lock()
            .expect("study cache lock poisoned")
            .get(&key)
            .cloned()
        {
            self.bump("cache.mem_hits", |s| s.mem_hits += 1);
            return Ok(hit);
        }
        if let Some(study) = self.load_study(key) {
            let study = Arc::new(study);
            self.index_study(key, &study);
            return Ok(study);
        }
        self.bump("cache.misses", |s| s.misses += 1);
        let study = Arc::new(crate::stages::execute_with(exec, spec, Some(self))?);
        self.persist("study", key, &encode_study(key, &study));
        self.index_study(key, &study);
        Ok(study)
    }

    /// Insert a study into the memory layer and the digest index.
    fn index_study(&self, key: u64, study: &Arc<Characterization>) {
        self.by_digest
            .lock()
            .expect("digest index lock poisoned")
            .insert(study.digest(), key);
        self.studies
            .lock()
            .expect("study cache lock poisoned")
            .insert(key, Arc::clone(study));
    }

    /// Whether the study for `spec` is already resident in the in-memory
    /// layer — i.e. an immediate [`StudyCache::study_spec`] call would be a
    /// memory hit. Used by `mwc-server`'s request telemetry to label
    /// responses cache-hit/miss without perturbing the cache counters.
    pub fn is_resident(&self, spec: &StudySpec) -> bool {
        self.enabled
            && self
                .studies
                .lock()
                .expect("study cache lock poisoned")
                .contains_key(&spec.study_key())
    }

    /// Look up a completed study by its [`Characterization::digest`] — the
    /// handle `mwc-server` returns to clients. Only studies that passed
    /// through this cache instance are findable: the digest is known after
    /// a result exists, so the index is memory-only by construction (disk
    /// entries are keyed by input digests, not result digests).
    pub fn study_by_digest(&self, digest: u64) -> Option<Arc<Characterization>> {
        let key = *self
            .by_digest
            .lock()
            .expect("digest index lock poisoned")
            .get(&digest)?;
        self.studies
            .lock()
            .expect("study cache lock poisoned")
            .get(&key)
            .cloned()
    }

    /// The feature matrices derived from `study`, memoized in memory and
    /// keyed by [`Characterization::digest`] — the featurize stage's
    /// content address. Matrices are cheap relative to simulation, so no
    /// disk layer; the memo collapses the many per-figure/table
    /// extractions of one study into a single computation.
    pub fn features(&self, study: &Characterization) -> Result<Arc<FeatureSet>, AnalysisError> {
        if !self.enabled {
            return Ok(Arc::new(crate::features::featurize(study)?));
        }
        let digest = study.digest();
        if let Some(hit) = self
            .features
            .lock()
            .expect("feature cache lock poisoned")
            .get(&digest)
            .cloned()
        {
            self.stage_bump(StageKind::Featurize, "mem_hits", 1, |s| s.mem_hits += 1);
            return Ok(hit);
        }
        self.stage_bump(StageKind::Featurize, "misses", 1, |s| s.misses += 1);
        let mut span = mwc_obs::span("stage.featurize");
        span.field("study", digest);
        let set = Arc::new(crate::features::featurize(study)?);
        self.features
            .lock()
            .expect("feature cache lock poisoned")
            .insert(digest, Arc::clone(&set));
        Ok(set)
    }

    /// The Fig-4 validation sweep over `m` and `ks`, served from the cache
    /// when warm. Falls back to [`mwc_analysis::validation::sweep`] on a
    /// miss and persists the (small) result.
    pub fn sweep(&self, m: &Matrix, ks: &[usize]) -> Result<ValidationSweep, AnalysisError> {
        if !self.enabled {
            return run_sweep(m, ks);
        }
        let key = sweep_key(m.digest(), ks);
        let mut span = mwc_obs::span("cache.sweep");
        span.field("key", key);
        if let Some(hit) = self
            .sweeps
            .lock()
            .expect("sweep cache lock poisoned")
            .get(&key)
            .cloned()
        {
            self.bump("cache.mem_hits", |s| s.mem_hits += 1);
            self.stage_bump(StageKind::Analyze, "mem_hits", 1, |s| s.mem_hits += 1);
            return Ok(hit);
        }
        if let Some(path) = self.entry_path("sweep", key) {
            if let Ok(bytes) = fs::read(&path) {
                if let Some(s) = decode_sweep(key, &bytes) {
                    let n = bytes.len() as u64;
                    self.bump("cache.disk_hits", |st| st.disk_hits += 1);
                    self.stage_bump(StageKind::Analyze, "disk_hits", 1, |st| st.disk_hits += 1);
                    self.stage_bump(StageKind::Analyze, "bytes_read", n, |st| st.bytes_read += n);
                    self.sweeps
                        .lock()
                        .expect("sweep cache lock poisoned")
                        .insert(key, s.clone());
                    return Ok(s);
                }
                self.bump("cache.corrupt_entries", |st| st.corrupt_entries += 1);
                self.stage_bump(StageKind::Analyze, "corrupt_entries", 1, |st| {
                    st.corrupt_entries += 1
                });
                let _ = fs::remove_file(&path);
            }
        }
        self.bump("cache.misses", |s| s.misses += 1);
        self.stage_bump(StageKind::Analyze, "misses", 1, |s| s.misses += 1);
        let s = run_sweep(m, ks)?;
        let bytes = encode_sweep(key, &s);
        if self.persist("sweep", key, &bytes) {
            let n = bytes.len() as u64;
            self.stage_bump(StageKind::Analyze, "stores", 1, |st| st.stores += 1);
            self.stage_bump(StageKind::Analyze, "bytes_written", n, |st| {
                st.bytes_written += n
            });
        }
        self.sweeps
            .lock()
            .expect("sweep cache lock poisoned")
            .insert(key, s.clone());
        Ok(s)
    }

    fn entry_path(&self, kind: &str, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{kind}-{key:016x}.mwcc")))
    }

    /// Read and validate a study entry; any defect is a miss, never an
    /// error. A corrupt entry is deleted so the recompute re-stores it.
    fn load_study(&self, key: u64) -> Option<Characterization> {
        let path = self.entry_path("study", key)?;
        let bytes = fs::read(&path).ok()?;
        match decode_study(key, &bytes) {
            Some(study) => {
                self.bump("cache.disk_hits", |s| s.disk_hits += 1);
                Some(study)
            }
            None => {
                self.bump("cache.corrupt_entries", |s| s.corrupt_entries += 1);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Look up a per-unit capture+derive artifact (memory, then disk).
    /// Capture-stage counters mirror the derive ones: a hit means the
    /// unit's simulation was skipped, a miss means it executed.
    pub(crate) fn unit_artifact(&self, key: u64) -> Option<UnitArtifact> {
        if !self.stage_entries_enabled() {
            return None;
        }
        if let Some(hit) = self
            .units
            .lock()
            .expect("unit cache lock poisoned")
            .get(&key)
            .cloned()
        {
            self.stage_bump(StageKind::Derive, "mem_hits", 1, |s| s.mem_hits += 1);
            self.stage_bump(StageKind::Capture, "mem_hits", 1, |s| s.mem_hits += 1);
            return Some(hit);
        }
        if let Some(path) = self.entry_path("unit", key) {
            if let Ok(bytes) = fs::read(&path) {
                if let Some(artifact) = decode_unit(key, &bytes) {
                    let n = bytes.len() as u64;
                    self.stage_bump(StageKind::Derive, "disk_hits", 1, |s| s.disk_hits += 1);
                    self.stage_bump(StageKind::Derive, "bytes_read", n, |s| s.bytes_read += n);
                    self.stage_bump(StageKind::Capture, "disk_hits", 1, |s| s.disk_hits += 1);
                    self.units
                        .lock()
                        .expect("unit cache lock poisoned")
                        .insert(key, artifact.clone());
                    return Some(artifact);
                }
                self.stage_bump(StageKind::Derive, "corrupt_entries", 1, |s| {
                    s.corrupt_entries += 1
                });
                let _ = fs::remove_file(&path);
            }
        }
        self.stage_bump(StageKind::Derive, "misses", 1, |s| s.misses += 1);
        self.stage_bump(StageKind::Capture, "misses", 1, |s| s.misses += 1);
        None
    }

    /// Store a freshly computed unit artifact in both layers. Unit-entry
    /// disk traffic is accounted to the derive [`StageStats`] only — the
    /// legacy [`CacheStats`] keep counting whole-study entries.
    pub(crate) fn store_unit_artifact(&self, key: u64, artifact: &UnitArtifact) {
        if !self.stage_entries_enabled() {
            return;
        }
        let bytes = encode_unit(key, artifact);
        let n = bytes.len() as u64;
        if self.write_entry("unit", key, &bytes) {
            self.stage_bump(StageKind::Derive, "stores", 1, |s| s.stores += 1);
            self.stage_bump(StageKind::Derive, "bytes_written", n, |s| {
                s.bytes_written += n
            });
        }
        self.units
            .lock()
            .expect("unit cache lock poisoned")
            .insert(key, artifact.clone());
    }

    /// Atomically write an entry (temp file + rename) and bump the legacy
    /// counters. Failure degrades to "not cached" — the computed result is
    /// unaffected. Returns whether the entry landed on disk.
    fn persist(&self, kind: &str, key: u64, bytes: &[u8]) -> bool {
        if self.dir.is_none() {
            return false;
        }
        if self.write_entry(kind, key, bytes) {
            self.bump("cache.stores", |s| s.stores += 1);
            true
        } else {
            self.bump("cache.store_failures", |s| s.store_failures += 1);
            false
        }
    }

    /// The raw atomic write (temp file + rename), shared by the legacy
    /// entries and the stage artifacts; bumps no counters itself.
    ///
    /// The temp name is unique per process *and* per write (pid plus a
    /// process-wide sequence number), so concurrent writers of the same
    /// key — two worker threads, or a server and a CLI bin sharing the
    /// cache directory — each stage into a private file and race only on
    /// the final atomic rename. Whichever rename lands last wins with a
    /// complete entry; readers can never observe a torn file. A failed
    /// rename cleans up its temp file so crashes don't strand debris.
    fn write_entry(&self, kind: &str, key: u64, bytes: &[u8]) -> bool {
        static TEMP_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let Some(path) = self.entry_path(kind, key) else {
            return false;
        };
        let write = || -> std::io::Result<()> {
            let dir = path.parent().expect("cache entry path has a parent");
            fs::create_dir_all(dir)?;
            let seq = TEMP_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            let tmp = dir.join(format!(
                ".tmp-{kind}-{key:016x}-{}-{seq}",
                std::process::id()
            ));
            fs::write(&tmp, bytes)?;
            if let Err(e) = fs::rename(&tmp, &path) {
                let _ = fs::remove_file(&tmp);
                return Err(e);
            }
            Ok(())
        };
        if write().is_ok() {
            self.evict_excess();
            true
        } else {
            false
        }
    }

    /// Drop the oldest-modified entries once the directory exceeds the
    /// entry cap.
    fn evict_excess(&self) {
        let Some(dir) = &self.dir else {
            return;
        };
        let Ok(entries) = fs::read_dir(dir) else {
            return;
        };
        let mut files: Vec<(SystemTime, PathBuf)> = entries
            .filter_map(|e| {
                let e = e.ok()?;
                let path = e.path();
                if path.extension().and_then(|x| x.to_str()) != Some("mwcc") {
                    return None;
                }
                let modified = e.metadata().ok()?.modified().ok()?;
                Some((modified, path))
            })
            .collect();
        if files.len() <= self.max_entries {
            return;
        }
        files.sort();
        let excess = files.len() - self.max_entries;
        for (_, path) in files.into_iter().take(excess) {
            if fs::remove_file(&path).is_ok() {
                self.bump("cache.evictions", |s| s.evictions += 1);
            }
        }
    }

    fn bump(&self, counter: &str, f: impl FnOnce(&mut CacheStats)) {
        f(&mut self.stats.lock().expect("cache stats lock poisoned"));
        mwc_obs::metrics::counter_add(counter, 1);
    }

    /// Bump one per-stage counter and its `cache.stage.<stage>.<counter>`
    /// observability twin by `n` (the closure applies the same delta to
    /// the [`StageStats`] slot).
    fn stage_bump(&self, kind: StageKind, counter: &str, n: u64, f: impl FnOnce(&mut StageStats)) {
        f(&mut self.stage_stats.lock().expect("stage stats lock poisoned")[kind.index()]);
        mwc_obs::metrics::counter_add(&format!("cache.stage.{}.{counter}", kind.name()), n);
    }
}

fn default_dir() -> PathBuf {
    if let Ok(d) = env::var("XDG_CACHE_HOME") {
        if !d.is_empty() {
            return PathBuf::from(d).join("mwc");
        }
    }
    if let Ok(h) = env::var("HOME") {
        if !h.is_empty() {
            return PathBuf::from(h).join(".cache").join("mwc");
        }
    }
    env::temp_dir().join("mwc-cache")
}

// ---------------------------------------------------------------------------
// Binary codec. Fixed little-endian layout; f64 round-trips by bit pattern
// (NaN gap payloads included), so decode(encode(x)).digest() == x.digest().
// ---------------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn raw(&mut self, bytes: &[u8]) {
        self.0.extend_from_slice(bytes);
    }

    fn u32(&mut self, v: u32) {
        self.raw(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.raw(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.raw(s.as_bytes());
    }
}

/// Bounds-checked little-endian reader: every accessor returns `None`
/// instead of panicking on a short or lying buffer.
struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Self {
        Dec { b, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.usize()?;
        if len > self.remaining() {
            return None;
        }
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.b.len()
    }
}

fn suite_index(s: Suite) -> u32 {
    Suite::ALL
        .iter()
        .position(|&x| x == s)
        .expect("every suite is in Suite::ALL") as u32
}

fn label_index(l: ClusterLabel) -> u32 {
    ClusterLabel::ALL
        .iter()
        .position(|&x| x == l)
        .expect("every label is in ClusterLabel::ALL") as u32
}

fn algorithm_index(a: Algorithm) -> u32 {
    Algorithm::ALL
        .iter()
        .position(|&x| x == a)
        .expect("every algorithm is in Algorithm::ALL") as u32
}

/// The 19 scalar metrics, in the fixed order shared by encode and decode
/// (matches the [`Characterization::digest`] order).
fn metric_values(m: &BenchmarkMetrics) -> [f64; 19] {
    [
        m.instruction_count,
        m.ipc,
        m.cache_mpki,
        m.branch_mpki,
        m.runtime_seconds,
        m.cpu_load,
        m.cpu_little_load,
        m.cpu_mid_load,
        m.cpu_big_load,
        m.cpu_little_util,
        m.cpu_mid_util,
        m.cpu_big_util,
        m.gpu_load,
        m.gpu_shaders_busy,
        m.gpu_bus_busy,
        m.aie_load,
        m.memory_used_fraction,
        m.memory_peak_mib,
        m.storage_busy,
    ]
}

fn series_refs(s: &UnitSeries) -> [&TimeSeries; 12] {
    [
        &s.cpu_load,
        &s.little_load,
        &s.mid_load,
        &s.big_load,
        &s.gpu_load,
        &s.shaders_busy,
        &s.bus_busy,
        &s.aie_load,
        &s.memory_fraction,
        &s.memory_mib,
        &s.ipc,
        &s.storage_busy,
    ]
}

fn health_values(h: &CaptureHealth) -> [usize; 9] {
    [
        h.runs_requested,
        h.runs_used,
        h.attempts,
        h.retries,
        h.failed_runs,
        h.truncated_runs,
        h.dropped_samples,
        h.overflow_wraps,
        h.outliers_rejected,
    ]
}

fn encode_profile(e: &mut Enc, p: &UnitProfile) {
    e.str(&p.name);
    e.u32(suite_index(p.suite));
    e.u32(label_index(p.label));
    e.str(&p.metrics.name);
    for v in metric_values(&p.metrics) {
        e.f64(v);
    }
    for s in series_refs(&p.series) {
        e.f64(s.tick_seconds);
        e.usize(s.values.len());
        for &v in &s.values {
            e.f64(v);
        }
    }
    for v in health_values(&p.health) {
        e.usize(v);
    }
}

pub(crate) fn encode_study(key: u64, study: &Characterization) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    e.raw(STUDY_MAGIC);
    e.u32(CACHE_SCHEMA_VERSION);
    e.u64(key);
    e.u64(study.digest());
    e.usize(study.profiles.len());
    for p in &study.profiles {
        encode_profile(&mut e, p);
    }
    e.usize(study.report.units_requested);
    e.usize(study.report.failed_units.len());
    for f in &study.report.failed_units {
        e.str(&f.name);
        e.str(&f.error);
    }
    e.0
}

fn decode_series(d: &mut Dec<'_>) -> Option<TimeSeries> {
    let tick_seconds = d.f64()?;
    let len = d.usize()?;
    if len > d.remaining() / 8 {
        return None;
    }
    let values = (0..len).map(|_| d.f64()).collect::<Option<Vec<_>>>()?;
    Some(TimeSeries::new(tick_seconds, values))
}

fn decode_profile(d: &mut Dec<'_>) -> Option<UnitProfile> {
    let name = d.str()?;
    let suite = *Suite::ALL.get(d.u32()? as usize)?;
    let label = *ClusterLabel::ALL.get(d.u32()? as usize)?;
    let metric_name = d.str()?;
    let mut v = [0.0; 19];
    for slot in &mut v {
        *slot = d.f64()?;
    }
    let metrics = BenchmarkMetrics {
        name: metric_name,
        instruction_count: v[0],
        ipc: v[1],
        cache_mpki: v[2],
        branch_mpki: v[3],
        runtime_seconds: v[4],
        cpu_load: v[5],
        cpu_little_load: v[6],
        cpu_mid_load: v[7],
        cpu_big_load: v[8],
        cpu_little_util: v[9],
        cpu_mid_util: v[10],
        cpu_big_util: v[11],
        gpu_load: v[12],
        gpu_shaders_busy: v[13],
        gpu_bus_busy: v[14],
        aie_load: v[15],
        memory_used_fraction: v[16],
        memory_peak_mib: v[17],
        storage_busy: v[18],
    };
    let series = UnitSeries {
        cpu_load: decode_series(d)?,
        little_load: decode_series(d)?,
        mid_load: decode_series(d)?,
        big_load: decode_series(d)?,
        gpu_load: decode_series(d)?,
        shaders_busy: decode_series(d)?,
        bus_busy: decode_series(d)?,
        aie_load: decode_series(d)?,
        memory_fraction: decode_series(d)?,
        memory_mib: decode_series(d)?,
        ipc: decode_series(d)?,
        storage_busy: decode_series(d)?,
    };
    let mut h = [0usize; 9];
    for slot in &mut h {
        *slot = d.usize()?;
    }
    let health = CaptureHealth {
        runs_requested: h[0],
        runs_used: h[1],
        attempts: h[2],
        retries: h[3],
        failed_runs: h[4],
        truncated_runs: h[5],
        dropped_samples: h[6],
        overflow_wraps: h[7],
        outliers_rejected: h[8],
    };
    Some(UnitProfile {
        name,
        suite,
        label,
        metrics,
        series,
        health,
    })
}

/// Decode a study entry. Returns `None` — never an error, never a panic —
/// unless the buffer fully parses under `expected_key` and the rebuilt
/// study's digest matches the digest stored at encode time.
pub(crate) fn decode_study(expected_key: u64, bytes: &[u8]) -> Option<Characterization> {
    let mut d = Dec::new(bytes);
    if d.take(4)? != STUDY_MAGIC {
        return None;
    }
    if d.u32()? != CACHE_SCHEMA_VERSION {
        return None;
    }
    if d.u64()? != expected_key {
        return None;
    }
    let stored_digest = d.u64()?;
    let n = d.usize()?;
    if n > d.remaining() {
        return None;
    }
    let profiles = (0..n)
        .map(|_| decode_profile(&mut d))
        .collect::<Option<Vec<_>>>()?;
    let units_requested = d.usize()?;
    let failed = d.usize()?;
    if failed > d.remaining() {
        return None;
    }
    let failed_units = (0..failed)
        .map(|_| {
            Some(FailedUnit {
                name: d.str()?,
                error: d.str()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    if !d.done() {
        return None;
    }
    let study = Characterization {
        profiles,
        report: DegradationReport {
            units_requested,
            failed_units,
        },
    };
    (study.digest() == stored_digest).then_some(study)
}

/// Artifact payload tags (after magic/version/key): a failed capture
/// stores its rendered error, a profiled unit stores its digest-verified
/// profile.
const UNIT_TAG_FAILED: u32 = 0;
const UNIT_TAG_PROFILED: u32 = 1;

pub(crate) fn encode_unit(key: u64, artifact: &UnitArtifact) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    e.raw(UNIT_MAGIC);
    e.u32(CACHE_SCHEMA_VERSION);
    e.u64(key);
    match artifact {
        UnitArtifact::Failed(error) => {
            e.u32(UNIT_TAG_FAILED);
            e.str(error);
        }
        UnitArtifact::Profiled(p) => {
            e.u32(UNIT_TAG_PROFILED);
            e.u64(p.digest());
            encode_profile(&mut e, p);
        }
    }
    // Failed artifacts carry no semantic digest, so integrity comes from a
    // trailing checksum over the whole payload (profiles get both).
    let mut h = Fnv1a::new();
    h.write_bytes(&e.0);
    let checksum = h.finish();
    e.u64(checksum);
    e.0
}

/// Decode a unit artifact. Returns `None` — never an error, never a
/// panic — unless the checksum, key, and (for profiles) the stored
/// profile digest all verify.
pub(crate) fn decode_unit(expected_key: u64, bytes: &[u8]) -> Option<UnitArtifact> {
    if bytes.len() < 8 {
        return None;
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    let mut h = Fnv1a::new();
    h.write_bytes(payload);
    if h.finish() != stored {
        return None;
    }
    let mut d = Dec::new(payload);
    if d.take(4)? != UNIT_MAGIC {
        return None;
    }
    if d.u32()? != CACHE_SCHEMA_VERSION {
        return None;
    }
    if d.u64()? != expected_key {
        return None;
    }
    match d.u32()? {
        UNIT_TAG_FAILED => {
            let error = d.str()?;
            d.done().then_some(UnitArtifact::Failed(error))
        }
        UNIT_TAG_PROFILED => {
            let stored_digest = d.u64()?;
            let profile = decode_profile(&mut d)?;
            if !d.done() || profile.digest() != stored_digest {
                return None;
            }
            Some(UnitArtifact::Profiled(Arc::new(profile)))
        }
        _ => None,
    }
}

pub(crate) fn encode_sweep(key: u64, s: &ValidationSweep) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    e.raw(SWEEP_MAGIC);
    e.u32(CACHE_SCHEMA_VERSION);
    e.u64(key);
    e.usize(s.points.len());
    for p in &s.points {
        e.u32(algorithm_index(p.algorithm));
        e.usize(p.k);
        for v in [p.dunn, p.silhouette, p.apn, p.ad] {
            e.f64(v);
        }
    }
    // Sweeps have no semantic digest of their own, so integrity comes from
    // a trailing checksum over the entire payload.
    let mut h = Fnv1a::new();
    h.write_bytes(&e.0);
    let checksum = h.finish();
    e.u64(checksum);
    e.0
}

pub(crate) fn decode_sweep(expected_key: u64, bytes: &[u8]) -> Option<ValidationSweep> {
    if bytes.len() < 8 {
        return None;
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    let mut h = Fnv1a::new();
    h.write_bytes(payload);
    if h.finish() != stored {
        return None;
    }
    let mut d = Dec::new(payload);
    if d.take(4)? != SWEEP_MAGIC {
        return None;
    }
    if d.u32()? != CACHE_SCHEMA_VERSION {
        return None;
    }
    if d.u64()? != expected_key {
        return None;
    }
    let n = d.usize()?;
    if n > d.remaining() {
        return None;
    }
    let points = (0..n)
        .map(|_| {
            let algorithm = *Algorithm::ALL.get(d.u32()? as usize)?;
            let k = d.usize()?;
            let dunn = d.f64()?;
            let silhouette = d.f64()?;
            let apn = d.f64()?;
            let ad = d.f64()?;
            Some(SweepPoint {
                algorithm,
                k,
                dunn,
                silhouette,
                apn,
                ad,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    if !d.done() {
        return None;
    }
    Some(ValidationSweep { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A unique throwaway directory per test (removed on drop).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            static N: AtomicUsize = AtomicUsize::new(0);
            let dir = env::temp_dir().join(format!(
                "mwc-cache-unit-{}-{}",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).expect("temp dir creation");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn tiny_metrics(name: &str) -> BenchmarkMetrics {
        BenchmarkMetrics {
            name: name.to_owned(),
            instruction_count: 1.5e9,
            ipc: 1.25,
            cache_mpki: 4.5,
            branch_mpki: 2.25,
            runtime_seconds: 60.5,
            cpu_load: 0.5,
            cpu_little_load: 0.25,
            cpu_mid_load: 0.5,
            cpu_big_load: 0.75,
            cpu_little_util: 0.4,
            cpu_mid_util: 0.6,
            cpu_big_util: 0.8,
            gpu_load: 0.3,
            gpu_shaders_busy: 0.2,
            gpu_bus_busy: 0.1,
            aie_load: 0.05,
            memory_used_fraction: 0.21,
            memory_peak_mib: 2550.0,
            storage_busy: 0.02,
        }
    }

    /// A hand-built two-unit study with NaN gaps, so codec tests run
    /// without simulating — and prove bit-exact round-tripping.
    fn tiny_study() -> Characterization {
        let s = |values: Vec<f64>| TimeSeries::new(0.5, values);
        let series = UnitSeries {
            cpu_load: s(vec![0.1, f64::NAN, -0.3]),
            little_load: s(vec![0.2, 0.3]),
            mid_load: s(vec![0.4]),
            big_load: s(vec![]),
            gpu_load: s(vec![0.9, 0.8]),
            shaders_busy: s(vec![0.5]),
            bus_busy: s(vec![0.1, 0.2, 0.3]),
            aie_load: s(vec![0.0]),
            memory_fraction: s(vec![0.21, 0.22]),
            memory_mib: s(vec![2500.0]),
            ipc: s(vec![1.2, f64::NAN]),
            storage_busy: s(vec![0.01]),
        };
        let profile = |name: &str, suite, label| UnitProfile {
            name: name.to_owned(),
            suite,
            label,
            metrics: tiny_metrics(name),
            series: series.clone(),
            health: CaptureHealth {
                runs_requested: 3,
                runs_used: 2,
                attempts: 4,
                retries: 1,
                failed_runs: 1,
                truncated_runs: 1,
                dropped_samples: 5,
                overflow_wraps: 1,
                outliers_rejected: 2,
            },
        };
        Characterization {
            profiles: vec![
                profile("Unit A", Suite::Antutu, ClusterLabel::Mixed),
                profile("Unit B", Suite::GfxBench, ClusterLabel::IntenseGraphics),
            ],
            report: DegradationReport {
                units_requested: 3,
                failed_units: vec![FailedUnit {
                    name: "Unit C".to_owned(),
                    error: "capture of 'Unit C' exhausted".to_owned(),
                }],
            },
        }
    }

    fn tiny_sweep() -> ValidationSweep {
        ValidationSweep {
            points: vec![
                SweepPoint {
                    algorithm: Algorithm::KMeans,
                    k: 2,
                    dunn: 0.5,
                    silhouette: 0.6,
                    apn: 0.1,
                    ad: 1.5,
                },
                SweepPoint {
                    algorithm: Algorithm::Hierarchical,
                    k: 5,
                    dunn: 0.9,
                    silhouette: 0.7,
                    apn: 0.05,
                    ad: 1.1,
                },
            ],
        }
    }

    #[test]
    fn study_roundtrip_is_bit_identical() {
        let study = tiny_study();
        let key = 0x1234_5678_9abc_def0;
        let bytes = encode_study(key, &study);
        let back = decode_study(key, &bytes).expect("well-formed entry decodes");
        assert_eq!(back.digest(), study.digest());
        assert_eq!(back.report, study.report);
        assert_eq!(back.profiles.len(), study.profiles.len());
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let study = tiny_study();
        let key = 42;
        let bytes = encode_study(key, &study);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(
                decode_study(key, &bad).is_none(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncated_and_mismatched_entries_are_rejected() {
        let study = tiny_study();
        let key = 7;
        let bytes = encode_study(key, &study);
        for len in [0, 1, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_study(key, &bytes[..len]).is_none(), "prefix {len}");
        }
        assert!(decode_study(8, &bytes).is_none(), "wrong key accepted");
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_study(key, &extended).is_none(), "trailing garbage");
    }

    #[test]
    fn sweep_roundtrip_and_corruption() {
        let s = tiny_sweep();
        let key = 99;
        let bytes = encode_sweep(key, &s);
        assert_eq!(decode_sweep(key, &bytes).expect("decodes"), s);
        assert!(decode_sweep(100, &bytes).is_none());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(decode_sweep(key, &bad).is_none(), "flip at byte {i}");
        }
    }

    #[test]
    fn study_key_changes_with_every_input() {
        let cfg = SocConfig::snapdragon_888();
        let faults = FaultConfig::default();
        let base = study_key(&cfg, 2024, 3, &faults);
        assert_eq!(base, study_key(&cfg, 2024, 3, &faults), "key is stable");
        assert_ne!(base, study_key(&cfg, 2025, 3, &faults), "seed is keyed");
        assert_ne!(base, study_key(&cfg, 2024, 1, &faults), "runs are keyed");
        let mut other_cfg = SocConfig::snapdragon_888();
        other_cfg.memory.capacity_mib += 1.0;
        assert_ne!(
            base,
            study_key(&other_cfg, 2024, 3, &faults),
            "config is keyed"
        );
        let active = FaultConfig {
            dropout_rate: 0.05,
            ..FaultConfig::default()
        };
        assert_ne!(base, study_key(&cfg, 2024, 3, &active), "faults are keyed");
    }

    #[test]
    fn sweep_key_changes_with_matrix_and_ks() {
        let base = sweep_key(1, &[2, 3, 4]);
        assert_eq!(base, sweep_key(1, &[2, 3, 4]));
        assert_ne!(base, sweep_key(2, &[2, 3, 4]));
        assert_ne!(base, sweep_key(1, &[2, 3]));
        assert_ne!(base, sweep_key(1, &[2, 4, 3]), "k order is keyed");
    }

    #[test]
    fn disk_layer_roundtrips_and_treats_corruption_as_miss() {
        let tmp = TempDir::new();
        let cache = StudyCache::with_dir(&tmp.0);
        let study = tiny_study();
        let key = 0xfeed;
        cache.persist("study", key, &encode_study(key, &study));
        assert_eq!(cache.stats().stores, 1);

        let loaded = cache.load_study(key).expect("warm entry loads");
        assert_eq!(loaded.digest(), study.digest());
        assert_eq!(cache.stats().disk_hits, 1);

        // Scribble over the entry: the next load degrades to a miss and
        // removes the bad file.
        let path = cache.entry_path("study", key).expect("disk layer");
        fs::write(&path, b"not a cache entry").expect("overwrite");
        assert!(cache.load_study(key).is_none());
        assert_eq!(cache.stats().corrupt_entries, 1);
        assert!(!path.exists(), "corrupt entry is dropped");
        assert!(cache.load_study(key).is_none(), "gone after removal");
    }

    #[test]
    fn eviction_caps_disk_entries() {
        let tmp = TempDir::new();
        let mut cache = StudyCache::with_dir(&tmp.0);
        cache.max_entries = 3;
        let study = tiny_study();
        for key in 0..5u64 {
            cache.persist("study", key, &encode_study(key, &study));
        }
        let remaining = fs::read_dir(&tmp.0)
            .expect("cache dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("mwcc"))
            .count();
        assert_eq!(remaining, 3);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn disabled_cache_never_touches_disk() {
        let cache = StudyCache::disabled();
        assert!(!cache.is_enabled());
        assert!(cache.dir().is_none());
        assert_eq!(cache.describe(), "off");
    }

    #[test]
    fn stats_summary_is_greppable() {
        let cache = StudyCache::in_memory();
        assert!(cache.stats().summary().contains("disk_hits=0"));
        assert!(cache.stage_summary().contains("sims=0"));
        assert!(cache.stage_summary().contains("reused=0"));
    }

    #[test]
    fn unit_artifact_roundtrip_both_variants() {
        let study = tiny_study();
        let key = 0xabcd;
        let profiled = UnitArtifact::Profiled(Arc::new(study.profiles[0].clone()));
        let bytes = encode_unit(key, &profiled);
        match decode_unit(key, &bytes).expect("profiled artifact decodes") {
            UnitArtifact::Profiled(p) => assert_eq!(p.digest(), study.profiles[0].digest()),
            UnitArtifact::Failed(e) => panic!("decoded as failure: {e}"),
        }
        let failed = UnitArtifact::Failed("capture of 'Unit A' exhausted".to_owned());
        let bytes = encode_unit(key, &failed);
        match decode_unit(key, &bytes).expect("failed artifact decodes") {
            UnitArtifact::Failed(e) => assert_eq!(e, "capture of 'Unit A' exhausted"),
            UnitArtifact::Profiled(_) => panic!("decoded as profile"),
        }
        assert!(decode_unit(key + 1, &bytes).is_none(), "wrong key accepted");
    }

    #[test]
    fn every_unit_entry_byte_corruption_is_detected() {
        let study = tiny_study();
        let key = 17;
        for artifact in [
            UnitArtifact::Profiled(Arc::new(study.profiles[1].clone())),
            UnitArtifact::Failed("boom".to_owned()),
        ] {
            let bytes = encode_unit(key, &artifact);
            for i in 0..bytes.len() {
                let mut bad = bytes.clone();
                bad[i] ^= 0x01;
                assert!(decode_unit(key, &bad).is_none(), "flip at byte {i}");
            }
            for len in [0, 1, 4, bytes.len() / 2, bytes.len() - 1] {
                assert!(decode_unit(key, &bytes[..len]).is_none(), "prefix {len}");
            }
        }
    }

    #[test]
    fn unit_artifact_layer_counts_into_stage_stats_not_legacy_stats() {
        let tmp = TempDir::new();
        let cache = StudyCache::with_dir(&tmp.0);
        let study = tiny_study();
        let key = 0xbeef;
        assert!(cache.unit_artifact(key).is_none(), "cold lookup misses");
        let artifact = UnitArtifact::Profiled(Arc::new(study.profiles[0].clone()));
        cache.store_unit_artifact(key, &artifact);
        assert!(cache.unit_artifact(key).is_some(), "memory hit");

        let derive = cache.stage(StageKind::Derive);
        assert_eq!(derive.misses, 1);
        assert_eq!(derive.stores, 1);
        assert_eq!(derive.mem_hits, 1);
        assert!(derive.bytes_written > 0);
        let capture = cache.stage(StageKind::Capture);
        assert_eq!(capture.misses, 1, "capture mirrors the miss (sim ran)");
        assert_eq!(capture.mem_hits, 1, "capture mirrors the hit (sim skipped)");
        assert_eq!(capture.stores, 0, "capture owns no entries");
        assert_eq!(
            cache.stats(),
            CacheStats::default(),
            "legacy counters never see unit-entry traffic"
        );

        // A fresh instance over the same directory replays from disk.
        let warm = StudyCache::with_dir(&tmp.0);
        assert!(warm.unit_artifact(key).is_some(), "disk hit");
        let derive = warm.stage(StageKind::Derive);
        assert_eq!(derive.disk_hits, 1);
        assert!(derive.bytes_read > 0);

        // Corruption degrades to a miss and drops the entry.
        let path = warm.entry_path("unit", key).expect("disk layer");
        fs::write(&path, b"junk").expect("overwrite");
        let corrupt = StudyCache::with_dir(&tmp.0);
        assert!(corrupt.unit_artifact(key).is_none());
        assert_eq!(corrupt.stage(StageKind::Derive).corrupt_entries, 1);
        assert!(!path.exists(), "corrupt unit entry is dropped");
    }

    #[test]
    fn concurrent_same_key_writers_never_tear_an_entry() {
        // Writers hammer one key with differently-sized (all valid)
        // payloads while readers decode continuously: every read must be
        // a complete entry or a clean miss — never a corruption error —
        // and no temp debris may survive.
        let tmp = TempDir::new();
        let cache = std::sync::Arc::new(StudyCache::with_dir(&tmp.0));
        let study_a = tiny_study();
        let mut study_b = tiny_study();
        study_b.profiles.pop();
        let key = 0x5eed;
        let digests = [study_a.digest(), study_b.digest()];

        std::thread::scope(|s| {
            for (w, study) in [study_a.clone(), study_b.clone()].into_iter().enumerate() {
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    let bytes = encode_study(key, &study);
                    for _ in 0..100 {
                        assert!(cache.write_entry("study", key, &bytes), "writer {w}");
                    }
                });
            }
            for _ in 0..2 {
                let cache = std::sync::Arc::clone(&cache);
                s.spawn(move || {
                    for _ in 0..200 {
                        if let Some(study) = cache.load_study(key) {
                            assert!(
                                digests.contains(&study.digest()),
                                "read a study no writer produced"
                            );
                        }
                    }
                });
            }
        });

        assert_eq!(cache.stats().corrupt_entries, 0, "no torn reads");
        let leftovers: Vec<_> = fs::read_dir(&tmp.0)
            .expect("cache dir")
            .filter_map(|e| e.ok())
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with(".tmp-"))
            .collect();
        assert!(leftovers.is_empty(), "temp debris: {leftovers:?}");
    }

    #[test]
    fn digest_index_finds_studies_and_misses_unknown() {
        let cache = StudyCache::in_memory();
        let study = Arc::new(tiny_study());
        cache.index_study(11, &study);
        let found = cache
            .study_by_digest(study.digest())
            .expect("indexed study is findable");
        assert_eq!(found.digest(), study.digest());
        assert!(cache.study_by_digest(study.digest() ^ 1).is_none());
    }

    #[test]
    fn stage_entry_layer_can_be_disabled_independently() {
        let tmp = TempDir::new();
        let mut cache = StudyCache::with_dir(&tmp.0);
        cache.stage_entries = false;
        assert!(cache.is_enabled());
        assert!(!cache.stage_entries_enabled());
        let artifact = UnitArtifact::Failed("x".to_owned());
        cache.store_unit_artifact(1, &artifact);
        assert!(cache.unit_artifact(1).is_none(), "layer is inert when off");
        assert_eq!(cache.stage(StageKind::Derive), StageStats::default());
        assert_eq!(
            fs::read_dir(&tmp.0).expect("cache dir").count(),
            0,
            "nothing written"
        );
    }
}
