//! Persistent, content-addressed result cache with incremental recompute.
//!
//! The paper's methodology re-evaluates the same `(workload set, seed,
//! run count, platform, fault model)` characterizations over and over —
//! every figure/table binary, every test pass and every validation sweep
//! starts from the identical study. This module memoizes those results so
//! only the *first* invocation simulates; warm runs deserialize and are
//! bit-identical (asserted via [`Characterization::digest`]).
//!
//! ## Layers
//!
//! * **Memory** — an intra-process map from cache key to shared
//!   [`Characterization`] / [`ValidationSweep`] instances.
//! * **Disk** — one file per entry under the cache directory,
//!   `study-<key>.mwcc` / `sweep-<key>.mwcc`, written atomically (temp
//!   file + rename) so readers never observe a partial entry.
//!
//! ## Keys
//!
//! Entries are addressed by an FNV-1a digest over everything that can
//! influence the result: the schema version and crate version, the study
//! protocol (seed, run count), [`SocConfig::content_digest`],
//! [`FaultConfig::content_digest`] and the unit registry (names, suites,
//! labels). Worker-thread count is deliberately *excluded*: results are
//! bit-identical at any parallelism (see `mwc_parallel`), so thread count
//! must not fragment the key space.
//!
//! ## Corruption handling
//!
//! A disk entry is trusted only if it fully parses *and* its recomputed
//! content digest matches the stored one. Anything else — bad magic,
//! version skew, short file, flipped byte — is treated as a plain miss:
//! the entry is deleted, the result recomputed and re-stored. Corrupt
//! entries can degrade a warm run to a cold one but can never surface
//! wrong numbers or errors.

use std::collections::HashMap;
use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::SystemTime;

use mwc_analysis::error::AnalysisError;
use mwc_analysis::matrix::Matrix;
use mwc_analysis::validation::{sweep as run_sweep, Algorithm, SweepPoint, ValidationSweep};
use mwc_profiler::derive::BenchmarkMetrics;
use mwc_profiler::faults::{CaptureHealth, FaultConfig};
use mwc_profiler::timeseries::TimeSeries;
use mwc_soc::config::SocConfig;
use mwc_workloads::registry::{all_units, ClusterLabel, Suite};

use crate::error::PipelineError;
use crate::pipeline::{
    Characterization, DegradationReport, FailedUnit, Fnv1a, UnitProfile, UnitSeries,
};

/// Set to `off` / `0` / `false` to disable both cache layers.
pub const CACHE_MODE_ENV: &str = "MWC_CACHE";
/// Overrides the on-disk cache directory.
pub const CACHE_DIR_ENV: &str = "MWC_CACHE_DIR";
/// Overrides the maximum number of on-disk entries before eviction.
pub const CACHE_MAX_ENV: &str = "MWC_CACHE_MAX";

/// Version of the serialized entry format *and* of the data model it
/// memoizes. Bump on any change to the simulation, capture, merge or
/// analysis arithmetic — or to the encoding itself — so stale entries
/// from older builds are invalidated instead of replayed.
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// Default cap on on-disk entries (oldest-modified evicted first).
const DEFAULT_MAX_ENTRIES: usize = 64;

const STUDY_MAGIC: &[u8; 4] = b"MWCC";
const SWEEP_MAGIC: &[u8; 4] = b"MWCS";

/// The content-addressed key of a study: a stable digest of everything
/// that can change a [`Characterization`]. Stable across processes and
/// machines; changes whenever any keyed input changes.
pub fn study_key(config: &SocConfig, seed: u64, runs: usize, faults: &FaultConfig) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("mwc-study");
    h.write_u64(u64::from(CACHE_SCHEMA_VERSION));
    h.write_str(env!("CARGO_PKG_VERSION"));
    h.write_u64(seed);
    h.write_usize(runs);
    h.write_u64(config.content_digest());
    h.write_u64(faults.content_digest());
    let units = all_units();
    h.write_usize(units.len());
    for u in &units {
        h.write_str(u.name);
        h.write_str(u.suite.name());
        h.write_str(u.label.name());
    }
    h.finish()
}

/// The content-addressed key of a Fig-4 validation sweep over a feature
/// matrix (`matrix_digest` from [`Matrix::digest`]) and a k range.
pub fn sweep_key(matrix_digest: u64, ks: &[usize]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_str("mwc-sweep");
    h.write_u64(u64::from(CACHE_SCHEMA_VERSION));
    h.write_str(env!("CARGO_PKG_VERSION"));
    h.write_u64(matrix_digest);
    h.write_usize(ks.len());
    for &k in ks {
        h.write_usize(k);
    }
    h.finish()
}

/// Counters of what the cache did this process.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries served from the in-process memory layer.
    pub mem_hits: u64,
    /// Entries deserialized from disk.
    pub disk_hits: u64,
    /// Lookups that had to recompute.
    pub misses: u64,
    /// Entries written to disk.
    pub stores: u64,
    /// Disk entries that failed validation and were discarded.
    pub corrupt_entries: u64,
    /// Disk entries evicted by the entry cap.
    pub evictions: u64,
    /// Disk writes that failed (the result is still returned).
    pub store_failures: u64,
}

impl CacheStats {
    /// Total hits across both layers.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// One-line machine-greppable rendering (used by `scripts/verify.sh`).
    pub fn summary(&self) -> String {
        format!(
            "mem_hits={} disk_hits={} misses={} stores={} corrupt={} evictions={} store_failures={}",
            self.mem_hits,
            self.disk_hits,
            self.misses,
            self.stores,
            self.corrupt_entries,
            self.evictions,
            self.store_failures
        )
    }
}

/// The two-layer study/sweep cache. Most callers use [`StudyCache::global`]
/// (configured from the environment once per process); tests construct
/// isolated instances with [`StudyCache::with_dir`].
#[derive(Debug)]
pub struct StudyCache {
    enabled: bool,
    dir: Option<PathBuf>,
    max_entries: usize,
    studies: Mutex<HashMap<u64, Arc<Characterization>>>,
    sweeps: Mutex<HashMap<u64, ValidationSweep>>,
    stats: Mutex<CacheStats>,
}

impl StudyCache {
    fn new(enabled: bool, dir: Option<PathBuf>, max_entries: usize) -> Self {
        StudyCache {
            enabled,
            dir,
            max_entries,
            studies: Mutex::new(HashMap::new()),
            sweeps: Mutex::new(HashMap::new()),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// Configure from the environment: `MWC_CACHE=off|0|false` disables,
    /// `MWC_CACHE_DIR` overrides the directory (default:
    /// `$XDG_CACHE_HOME/mwc`, then `$HOME/.cache/mwc`, then a `mwc-cache`
    /// directory under the system temp dir), `MWC_CACHE_MAX` caps the
    /// on-disk entry count.
    pub fn from_env() -> Self {
        let off = env::var(CACHE_MODE_ENV)
            .map(|v| {
                let v = v.to_ascii_lowercase();
                v == "off" || v == "0" || v == "false"
            })
            .unwrap_or(false);
        if off {
            return StudyCache::disabled();
        }
        let dir = env::var(CACHE_DIR_ENV)
            .ok()
            .filter(|d| !d.is_empty())
            .map(PathBuf::from)
            .unwrap_or_else(default_dir);
        let max_entries = env::var(CACHE_MAX_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_MAX_ENTRIES);
        StudyCache::new(true, Some(dir), max_entries)
    }

    /// An enabled cache persisting to an explicit directory (tests).
    pub fn with_dir(dir: impl Into<PathBuf>) -> Self {
        StudyCache::new(true, Some(dir.into()), DEFAULT_MAX_ENTRIES)
    }

    /// An enabled cache with no disk layer (intra-process reuse only).
    pub fn in_memory() -> Self {
        StudyCache::new(true, None, DEFAULT_MAX_ENTRIES)
    }

    /// A fully disabled cache: every lookup computes.
    pub fn disabled() -> Self {
        StudyCache::new(false, None, DEFAULT_MAX_ENTRIES)
    }

    /// The process-wide cache, configured from the environment on first
    /// use.
    pub fn global() -> &'static StudyCache {
        static GLOBAL: OnceLock<StudyCache> = OnceLock::new();
        GLOBAL.get_or_init(StudyCache::from_env)
    }

    /// Whether any caching is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The disk directory, if a persistent layer is configured.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// A snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("cache stats lock poisoned")
    }

    /// Human-readable description of the configuration.
    pub fn describe(&self) -> String {
        match (self.enabled, &self.dir) {
            (false, _) => "off".to_owned(),
            (true, None) => "in-memory only".to_owned(),
            (true, Some(d)) => format!("{} (max {} entries)", d.display(), self.max_entries),
        }
    }

    /// A fault-free study on `config` with the given protocol, served from
    /// the cache when warm (worker count from `MWC_THREADS`; excluded from
    /// the key because results are parallelism-invariant).
    pub fn study(
        &self,
        config: &SocConfig,
        seed: u64,
        runs: usize,
    ) -> Result<Arc<Characterization>, PipelineError> {
        self.study_with_faults(
            config,
            seed,
            runs,
            mwc_parallel::configured_threads(),
            &FaultConfig::default(),
        )
    }

    /// [`StudyCache::study`] with explicit worker count and fault model.
    /// A warm hit is guaranteed bit-identical to the cold computation
    /// (the stored [`Characterization::digest`] is re-verified on load).
    pub fn study_with_faults(
        &self,
        config: &SocConfig,
        seed: u64,
        runs: usize,
        threads: usize,
        faults: &FaultConfig,
    ) -> Result<Arc<Characterization>, PipelineError> {
        if !self.enabled {
            return Ok(Arc::new(Characterization::try_run_with(
                config.clone(),
                seed,
                runs,
                threads,
                faults,
            )?));
        }
        let key = study_key(config, seed, runs, faults);
        let mut span = mwc_obs::span("cache.study");
        span.field("key", key);
        if let Some(hit) = self
            .studies
            .lock()
            .expect("study cache lock poisoned")
            .get(&key)
            .cloned()
        {
            self.bump("cache.mem_hits", |s| s.mem_hits += 1);
            return Ok(hit);
        }
        if let Some(study) = self.load_study(key) {
            let study = Arc::new(study);
            self.studies
                .lock()
                .expect("study cache lock poisoned")
                .insert(key, Arc::clone(&study));
            return Ok(study);
        }
        self.bump("cache.misses", |s| s.misses += 1);
        let study = Arc::new(Characterization::try_run_with(
            config.clone(),
            seed,
            runs,
            threads,
            faults,
        )?);
        self.persist("study", key, &encode_study(key, &study));
        self.studies
            .lock()
            .expect("study cache lock poisoned")
            .insert(key, Arc::clone(&study));
        Ok(study)
    }

    /// The Fig-4 validation sweep over `m` and `ks`, served from the cache
    /// when warm. Falls back to [`mwc_analysis::validation::sweep`] on a
    /// miss and persists the (small) result.
    pub fn sweep(&self, m: &Matrix, ks: &[usize]) -> Result<ValidationSweep, AnalysisError> {
        if !self.enabled {
            return run_sweep(m, ks);
        }
        let key = sweep_key(m.digest(), ks);
        let mut span = mwc_obs::span("cache.sweep");
        span.field("key", key);
        if let Some(hit) = self
            .sweeps
            .lock()
            .expect("sweep cache lock poisoned")
            .get(&key)
            .cloned()
        {
            self.bump("cache.mem_hits", |s| s.mem_hits += 1);
            return Ok(hit);
        }
        if let Some(path) = self.entry_path("sweep", key) {
            if let Ok(bytes) = fs::read(&path) {
                if let Some(s) = decode_sweep(key, &bytes) {
                    self.bump("cache.disk_hits", |st| st.disk_hits += 1);
                    self.sweeps
                        .lock()
                        .expect("sweep cache lock poisoned")
                        .insert(key, s.clone());
                    return Ok(s);
                }
                self.bump("cache.corrupt_entries", |st| st.corrupt_entries += 1);
                let _ = fs::remove_file(&path);
            }
        }
        self.bump("cache.misses", |s| s.misses += 1);
        let s = run_sweep(m, ks)?;
        self.persist("sweep", key, &encode_sweep(key, &s));
        self.sweeps
            .lock()
            .expect("sweep cache lock poisoned")
            .insert(key, s.clone());
        Ok(s)
    }

    fn entry_path(&self, kind: &str, key: u64) -> Option<PathBuf> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("{kind}-{key:016x}.mwcc")))
    }

    /// Read and validate a study entry; any defect is a miss, never an
    /// error. A corrupt entry is deleted so the recompute re-stores it.
    fn load_study(&self, key: u64) -> Option<Characterization> {
        let path = self.entry_path("study", key)?;
        let bytes = fs::read(&path).ok()?;
        match decode_study(key, &bytes) {
            Some(study) => {
                self.bump("cache.disk_hits", |s| s.disk_hits += 1);
                Some(study)
            }
            None => {
                self.bump("cache.corrupt_entries", |s| s.corrupt_entries += 1);
                let _ = fs::remove_file(&path);
                None
            }
        }
    }

    /// Atomically write an entry (temp file + rename). Failure degrades to
    /// "not cached" — the computed result is unaffected.
    fn persist(&self, kind: &str, key: u64, bytes: &[u8]) {
        let Some(path) = self.entry_path(kind, key) else {
            return;
        };
        let write = || -> std::io::Result<()> {
            let dir = path.parent().expect("cache entry path has a parent");
            fs::create_dir_all(dir)?;
            let tmp = dir.join(format!(".tmp-{kind}-{key:016x}-{}", std::process::id()));
            fs::write(&tmp, bytes)?;
            fs::rename(&tmp, &path)?;
            Ok(())
        };
        if write().is_ok() {
            self.bump("cache.stores", |s| s.stores += 1);
            self.evict_excess();
        } else {
            self.bump("cache.store_failures", |s| s.store_failures += 1);
        }
    }

    /// Drop the oldest-modified entries once the directory exceeds the
    /// entry cap.
    fn evict_excess(&self) {
        let Some(dir) = &self.dir else {
            return;
        };
        let Ok(entries) = fs::read_dir(dir) else {
            return;
        };
        let mut files: Vec<(SystemTime, PathBuf)> = entries
            .filter_map(|e| {
                let e = e.ok()?;
                let path = e.path();
                if path.extension().and_then(|x| x.to_str()) != Some("mwcc") {
                    return None;
                }
                let modified = e.metadata().ok()?.modified().ok()?;
                Some((modified, path))
            })
            .collect();
        if files.len() <= self.max_entries {
            return;
        }
        files.sort();
        let excess = files.len() - self.max_entries;
        for (_, path) in files.into_iter().take(excess) {
            if fs::remove_file(&path).is_ok() {
                self.bump("cache.evictions", |s| s.evictions += 1);
            }
        }
    }

    fn bump(&self, counter: &str, f: impl FnOnce(&mut CacheStats)) {
        f(&mut self.stats.lock().expect("cache stats lock poisoned"));
        mwc_obs::metrics::counter_add(counter, 1);
    }
}

fn default_dir() -> PathBuf {
    if let Ok(d) = env::var("XDG_CACHE_HOME") {
        if !d.is_empty() {
            return PathBuf::from(d).join("mwc");
        }
    }
    if let Ok(h) = env::var("HOME") {
        if !h.is_empty() {
            return PathBuf::from(h).join(".cache").join("mwc");
        }
    }
    env::temp_dir().join("mwc-cache")
}

// ---------------------------------------------------------------------------
// Binary codec. Fixed little-endian layout; f64 round-trips by bit pattern
// (NaN gap payloads included), so decode(encode(x)).digest() == x.digest().
// ---------------------------------------------------------------------------

struct Enc(Vec<u8>);

impl Enc {
    fn raw(&mut self, bytes: &[u8]) {
        self.0.extend_from_slice(bytes);
    }

    fn u32(&mut self, v: u32) {
        self.raw(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.raw(&v.to_le_bytes());
    }

    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.raw(s.as_bytes());
    }
}

/// Bounds-checked little-endian reader: every accessor returns `None`
/// instead of panicking on a short or lying buffer.
struct Dec<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(b: &'a [u8]) -> Self {
        Dec { b, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        if self.remaining() < n {
            return None;
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Some(s)
    }

    fn u32(&mut self) -> Option<u32> {
        Some(u32::from_le_bytes(self.take(4)?.try_into().ok()?))
    }

    fn u64(&mut self) -> Option<u64> {
        Some(u64::from_le_bytes(self.take(8)?.try_into().ok()?))
    }

    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }

    fn f64(&mut self) -> Option<f64> {
        Some(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Option<String> {
        let len = self.usize()?;
        if len > self.remaining() {
            return None;
        }
        String::from_utf8(self.take(len)?.to_vec()).ok()
    }

    fn done(&self) -> bool {
        self.pos == self.b.len()
    }
}

fn suite_index(s: Suite) -> u32 {
    Suite::ALL
        .iter()
        .position(|&x| x == s)
        .expect("every suite is in Suite::ALL") as u32
}

fn label_index(l: ClusterLabel) -> u32 {
    ClusterLabel::ALL
        .iter()
        .position(|&x| x == l)
        .expect("every label is in ClusterLabel::ALL") as u32
}

fn algorithm_index(a: Algorithm) -> u32 {
    Algorithm::ALL
        .iter()
        .position(|&x| x == a)
        .expect("every algorithm is in Algorithm::ALL") as u32
}

/// The 19 scalar metrics, in the fixed order shared by encode and decode
/// (matches the [`Characterization::digest`] order).
fn metric_values(m: &BenchmarkMetrics) -> [f64; 19] {
    [
        m.instruction_count,
        m.ipc,
        m.cache_mpki,
        m.branch_mpki,
        m.runtime_seconds,
        m.cpu_load,
        m.cpu_little_load,
        m.cpu_mid_load,
        m.cpu_big_load,
        m.cpu_little_util,
        m.cpu_mid_util,
        m.cpu_big_util,
        m.gpu_load,
        m.gpu_shaders_busy,
        m.gpu_bus_busy,
        m.aie_load,
        m.memory_used_fraction,
        m.memory_peak_mib,
        m.storage_busy,
    ]
}

fn series_refs(s: &UnitSeries) -> [&TimeSeries; 12] {
    [
        &s.cpu_load,
        &s.little_load,
        &s.mid_load,
        &s.big_load,
        &s.gpu_load,
        &s.shaders_busy,
        &s.bus_busy,
        &s.aie_load,
        &s.memory_fraction,
        &s.memory_mib,
        &s.ipc,
        &s.storage_busy,
    ]
}

fn health_values(h: &CaptureHealth) -> [usize; 9] {
    [
        h.runs_requested,
        h.runs_used,
        h.attempts,
        h.retries,
        h.failed_runs,
        h.truncated_runs,
        h.dropped_samples,
        h.overflow_wraps,
        h.outliers_rejected,
    ]
}

pub(crate) fn encode_study(key: u64, study: &Characterization) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    e.raw(STUDY_MAGIC);
    e.u32(CACHE_SCHEMA_VERSION);
    e.u64(key);
    e.u64(study.digest());
    e.usize(study.profiles.len());
    for p in &study.profiles {
        e.str(&p.name);
        e.u32(suite_index(p.suite));
        e.u32(label_index(p.label));
        e.str(&p.metrics.name);
        for v in metric_values(&p.metrics) {
            e.f64(v);
        }
        for s in series_refs(&p.series) {
            e.f64(s.tick_seconds);
            e.usize(s.values.len());
            for &v in &s.values {
                e.f64(v);
            }
        }
        for v in health_values(&p.health) {
            e.usize(v);
        }
    }
    e.usize(study.report.units_requested);
    e.usize(study.report.failed_units.len());
    for f in &study.report.failed_units {
        e.str(&f.name);
        e.str(&f.error);
    }
    e.0
}

fn decode_series(d: &mut Dec<'_>) -> Option<TimeSeries> {
    let tick_seconds = d.f64()?;
    let len = d.usize()?;
    if len > d.remaining() / 8 {
        return None;
    }
    let values = (0..len).map(|_| d.f64()).collect::<Option<Vec<_>>>()?;
    Some(TimeSeries::new(tick_seconds, values))
}

fn decode_profile(d: &mut Dec<'_>) -> Option<UnitProfile> {
    let name = d.str()?;
    let suite = *Suite::ALL.get(d.u32()? as usize)?;
    let label = *ClusterLabel::ALL.get(d.u32()? as usize)?;
    let metric_name = d.str()?;
    let mut v = [0.0; 19];
    for slot in &mut v {
        *slot = d.f64()?;
    }
    let metrics = BenchmarkMetrics {
        name: metric_name,
        instruction_count: v[0],
        ipc: v[1],
        cache_mpki: v[2],
        branch_mpki: v[3],
        runtime_seconds: v[4],
        cpu_load: v[5],
        cpu_little_load: v[6],
        cpu_mid_load: v[7],
        cpu_big_load: v[8],
        cpu_little_util: v[9],
        cpu_mid_util: v[10],
        cpu_big_util: v[11],
        gpu_load: v[12],
        gpu_shaders_busy: v[13],
        gpu_bus_busy: v[14],
        aie_load: v[15],
        memory_used_fraction: v[16],
        memory_peak_mib: v[17],
        storage_busy: v[18],
    };
    let series = UnitSeries {
        cpu_load: decode_series(d)?,
        little_load: decode_series(d)?,
        mid_load: decode_series(d)?,
        big_load: decode_series(d)?,
        gpu_load: decode_series(d)?,
        shaders_busy: decode_series(d)?,
        bus_busy: decode_series(d)?,
        aie_load: decode_series(d)?,
        memory_fraction: decode_series(d)?,
        memory_mib: decode_series(d)?,
        ipc: decode_series(d)?,
        storage_busy: decode_series(d)?,
    };
    let mut h = [0usize; 9];
    for slot in &mut h {
        *slot = d.usize()?;
    }
    let health = CaptureHealth {
        runs_requested: h[0],
        runs_used: h[1],
        attempts: h[2],
        retries: h[3],
        failed_runs: h[4],
        truncated_runs: h[5],
        dropped_samples: h[6],
        overflow_wraps: h[7],
        outliers_rejected: h[8],
    };
    Some(UnitProfile {
        name,
        suite,
        label,
        metrics,
        series,
        health,
    })
}

/// Decode a study entry. Returns `None` — never an error, never a panic —
/// unless the buffer fully parses under `expected_key` and the rebuilt
/// study's digest matches the digest stored at encode time.
pub(crate) fn decode_study(expected_key: u64, bytes: &[u8]) -> Option<Characterization> {
    let mut d = Dec::new(bytes);
    if d.take(4)? != STUDY_MAGIC {
        return None;
    }
    if d.u32()? != CACHE_SCHEMA_VERSION {
        return None;
    }
    if d.u64()? != expected_key {
        return None;
    }
    let stored_digest = d.u64()?;
    let n = d.usize()?;
    if n > d.remaining() {
        return None;
    }
    let profiles = (0..n)
        .map(|_| decode_profile(&mut d))
        .collect::<Option<Vec<_>>>()?;
    let units_requested = d.usize()?;
    let failed = d.usize()?;
    if failed > d.remaining() {
        return None;
    }
    let failed_units = (0..failed)
        .map(|_| {
            Some(FailedUnit {
                name: d.str()?,
                error: d.str()?,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    if !d.done() {
        return None;
    }
    let study = Characterization {
        profiles,
        report: DegradationReport {
            units_requested,
            failed_units,
        },
    };
    (study.digest() == stored_digest).then_some(study)
}

pub(crate) fn encode_sweep(key: u64, s: &ValidationSweep) -> Vec<u8> {
    let mut e = Enc(Vec::new());
    e.raw(SWEEP_MAGIC);
    e.u32(CACHE_SCHEMA_VERSION);
    e.u64(key);
    e.usize(s.points.len());
    for p in &s.points {
        e.u32(algorithm_index(p.algorithm));
        e.usize(p.k);
        for v in [p.dunn, p.silhouette, p.apn, p.ad] {
            e.f64(v);
        }
    }
    // Sweeps have no semantic digest of their own, so integrity comes from
    // a trailing checksum over the entire payload.
    let mut h = Fnv1a::new();
    h.write_bytes(&e.0);
    let checksum = h.finish();
    e.u64(checksum);
    e.0
}

pub(crate) fn decode_sweep(expected_key: u64, bytes: &[u8]) -> Option<ValidationSweep> {
    if bytes.len() < 8 {
        return None;
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().ok()?);
    let mut h = Fnv1a::new();
    h.write_bytes(payload);
    if h.finish() != stored {
        return None;
    }
    let mut d = Dec::new(payload);
    if d.take(4)? != SWEEP_MAGIC {
        return None;
    }
    if d.u32()? != CACHE_SCHEMA_VERSION {
        return None;
    }
    if d.u64()? != expected_key {
        return None;
    }
    let n = d.usize()?;
    if n > d.remaining() {
        return None;
    }
    let points = (0..n)
        .map(|_| {
            let algorithm = *Algorithm::ALL.get(d.u32()? as usize)?;
            let k = d.usize()?;
            let dunn = d.f64()?;
            let silhouette = d.f64()?;
            let apn = d.f64()?;
            let ad = d.f64()?;
            Some(SweepPoint {
                algorithm,
                k,
                dunn,
                silhouette,
                apn,
                ad,
            })
        })
        .collect::<Option<Vec<_>>>()?;
    if !d.done() {
        return None;
    }
    Some(ValidationSweep { points })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A unique throwaway directory per test (removed on drop).
    struct TempDir(PathBuf);

    impl TempDir {
        fn new() -> Self {
            static N: AtomicUsize = AtomicUsize::new(0);
            let dir = env::temp_dir().join(format!(
                "mwc-cache-unit-{}-{}",
                std::process::id(),
                N.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&dir).expect("temp dir creation");
            TempDir(dir)
        }
    }

    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = fs::remove_dir_all(&self.0);
        }
    }

    fn tiny_metrics(name: &str) -> BenchmarkMetrics {
        BenchmarkMetrics {
            name: name.to_owned(),
            instruction_count: 1.5e9,
            ipc: 1.25,
            cache_mpki: 4.5,
            branch_mpki: 2.25,
            runtime_seconds: 60.5,
            cpu_load: 0.5,
            cpu_little_load: 0.25,
            cpu_mid_load: 0.5,
            cpu_big_load: 0.75,
            cpu_little_util: 0.4,
            cpu_mid_util: 0.6,
            cpu_big_util: 0.8,
            gpu_load: 0.3,
            gpu_shaders_busy: 0.2,
            gpu_bus_busy: 0.1,
            aie_load: 0.05,
            memory_used_fraction: 0.21,
            memory_peak_mib: 2550.0,
            storage_busy: 0.02,
        }
    }

    /// A hand-built two-unit study with NaN gaps, so codec tests run
    /// without simulating — and prove bit-exact round-tripping.
    fn tiny_study() -> Characterization {
        let s = |values: Vec<f64>| TimeSeries::new(0.5, values);
        let series = UnitSeries {
            cpu_load: s(vec![0.1, f64::NAN, -0.3]),
            little_load: s(vec![0.2, 0.3]),
            mid_load: s(vec![0.4]),
            big_load: s(vec![]),
            gpu_load: s(vec![0.9, 0.8]),
            shaders_busy: s(vec![0.5]),
            bus_busy: s(vec![0.1, 0.2, 0.3]),
            aie_load: s(vec![0.0]),
            memory_fraction: s(vec![0.21, 0.22]),
            memory_mib: s(vec![2500.0]),
            ipc: s(vec![1.2, f64::NAN]),
            storage_busy: s(vec![0.01]),
        };
        let profile = |name: &str, suite, label| UnitProfile {
            name: name.to_owned(),
            suite,
            label,
            metrics: tiny_metrics(name),
            series: series.clone(),
            health: CaptureHealth {
                runs_requested: 3,
                runs_used: 2,
                attempts: 4,
                retries: 1,
                failed_runs: 1,
                truncated_runs: 1,
                dropped_samples: 5,
                overflow_wraps: 1,
                outliers_rejected: 2,
            },
        };
        Characterization {
            profiles: vec![
                profile("Unit A", Suite::Antutu, ClusterLabel::Mixed),
                profile("Unit B", Suite::GfxBench, ClusterLabel::IntenseGraphics),
            ],
            report: DegradationReport {
                units_requested: 3,
                failed_units: vec![FailedUnit {
                    name: "Unit C".to_owned(),
                    error: "capture of 'Unit C' exhausted".to_owned(),
                }],
            },
        }
    }

    fn tiny_sweep() -> ValidationSweep {
        ValidationSweep {
            points: vec![
                SweepPoint {
                    algorithm: Algorithm::KMeans,
                    k: 2,
                    dunn: 0.5,
                    silhouette: 0.6,
                    apn: 0.1,
                    ad: 1.5,
                },
                SweepPoint {
                    algorithm: Algorithm::Hierarchical,
                    k: 5,
                    dunn: 0.9,
                    silhouette: 0.7,
                    apn: 0.05,
                    ad: 1.1,
                },
            ],
        }
    }

    #[test]
    fn study_roundtrip_is_bit_identical() {
        let study = tiny_study();
        let key = 0x1234_5678_9abc_def0;
        let bytes = encode_study(key, &study);
        let back = decode_study(key, &bytes).expect("well-formed entry decodes");
        assert_eq!(back.digest(), study.digest());
        assert_eq!(back.report, study.report);
        assert_eq!(back.profiles.len(), study.profiles.len());
    }

    #[test]
    fn every_single_byte_corruption_is_detected() {
        let study = tiny_study();
        let key = 42;
        let bytes = encode_study(key, &study);
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0xFF;
            assert!(
                decode_study(key, &bad).is_none(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncated_and_mismatched_entries_are_rejected() {
        let study = tiny_study();
        let key = 7;
        let bytes = encode_study(key, &study);
        for len in [0, 1, 4, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode_study(key, &bytes[..len]).is_none(), "prefix {len}");
        }
        assert!(decode_study(8, &bytes).is_none(), "wrong key accepted");
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(decode_study(key, &extended).is_none(), "trailing garbage");
    }

    #[test]
    fn sweep_roundtrip_and_corruption() {
        let s = tiny_sweep();
        let key = 99;
        let bytes = encode_sweep(key, &s);
        assert_eq!(decode_sweep(key, &bytes).expect("decodes"), s);
        assert!(decode_sweep(100, &bytes).is_none());
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert!(decode_sweep(key, &bad).is_none(), "flip at byte {i}");
        }
    }

    #[test]
    fn study_key_changes_with_every_input() {
        let cfg = SocConfig::snapdragon_888();
        let faults = FaultConfig::default();
        let base = study_key(&cfg, 2024, 3, &faults);
        assert_eq!(base, study_key(&cfg, 2024, 3, &faults), "key is stable");
        assert_ne!(base, study_key(&cfg, 2025, 3, &faults), "seed is keyed");
        assert_ne!(base, study_key(&cfg, 2024, 1, &faults), "runs are keyed");
        let mut other_cfg = SocConfig::snapdragon_888();
        other_cfg.memory.capacity_mib += 1.0;
        assert_ne!(
            base,
            study_key(&other_cfg, 2024, 3, &faults),
            "config is keyed"
        );
        let active = FaultConfig {
            dropout_rate: 0.05,
            ..FaultConfig::default()
        };
        assert_ne!(base, study_key(&cfg, 2024, 3, &active), "faults are keyed");
    }

    #[test]
    fn sweep_key_changes_with_matrix_and_ks() {
        let base = sweep_key(1, &[2, 3, 4]);
        assert_eq!(base, sweep_key(1, &[2, 3, 4]));
        assert_ne!(base, sweep_key(2, &[2, 3, 4]));
        assert_ne!(base, sweep_key(1, &[2, 3]));
        assert_ne!(base, sweep_key(1, &[2, 4, 3]), "k order is keyed");
    }

    #[test]
    fn disk_layer_roundtrips_and_treats_corruption_as_miss() {
        let tmp = TempDir::new();
        let cache = StudyCache::with_dir(&tmp.0);
        let study = tiny_study();
        let key = 0xfeed;
        cache.persist("study", key, &encode_study(key, &study));
        assert_eq!(cache.stats().stores, 1);

        let loaded = cache.load_study(key).expect("warm entry loads");
        assert_eq!(loaded.digest(), study.digest());
        assert_eq!(cache.stats().disk_hits, 1);

        // Scribble over the entry: the next load degrades to a miss and
        // removes the bad file.
        let path = cache.entry_path("study", key).expect("disk layer");
        fs::write(&path, b"not a cache entry").expect("overwrite");
        assert!(cache.load_study(key).is_none());
        assert_eq!(cache.stats().corrupt_entries, 1);
        assert!(!path.exists(), "corrupt entry is dropped");
        assert!(cache.load_study(key).is_none(), "gone after removal");
    }

    #[test]
    fn eviction_caps_disk_entries() {
        let tmp = TempDir::new();
        let mut cache = StudyCache::with_dir(&tmp.0);
        cache.max_entries = 3;
        let study = tiny_study();
        for key in 0..5u64 {
            cache.persist("study", key, &encode_study(key, &study));
        }
        let remaining = fs::read_dir(&tmp.0)
            .expect("cache dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().and_then(|x| x.to_str()) == Some("mwcc"))
            .count();
        assert_eq!(remaining, 3);
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn disabled_cache_never_touches_disk() {
        let cache = StudyCache::disabled();
        assert!(!cache.is_enabled());
        assert!(cache.dir().is_none());
        assert_eq!(cache.describe(), "off");
    }

    #[test]
    fn stats_summary_is_greppable() {
        let cache = StudyCache::in_memory();
        assert!(cache.stats().summary().contains("disk_hits=0"));
    }
}
