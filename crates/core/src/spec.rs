//! The typed study specification — the root input of the staged pipeline.
//!
//! A [`StudySpec`] names everything that can influence a study's result:
//! the platform, the `(seed, runs)` protocol, the baseline fault model,
//! optional per-unit fault overrides, and which registry units to profile.
//! Worker-thread count rides along for scheduling but is excluded from
//! every content key, because results are bit-identical at any
//! parallelism (see `mwc_parallel`).
//!
//! The spec is also where the stage graph's artifact keys are computed:
//!
//! * [`StudySpec::unit_key`] — the per-unit capture/derive artifact key.
//!   It digests only the inputs that reach that unit's simulation (seed,
//!   runs, platform, registry identity, the unit's *effective* fault
//!   config), so changing one unit's fault override invalidates exactly
//!   one artifact.
//! * [`StudySpec::study_key`] — the whole-study memo key. For a spec with
//!   the full unit selection and no overrides it is byte-compatible with
//!   the legacy [`crate::cache::study_key`], so entries written by earlier
//!   versions of the cache stay valid.

use mwc_profiler::faults::{FaultConfig, FAULT_UNITS_ENV};
use mwc_soc::config::SocConfig;
use mwc_workloads::registry::{all_units, BenchmarkUnit};

use crate::cache::CACHE_SCHEMA_VERSION;
use crate::error::PipelineError;
use crate::pipeline::Fnv1a;

/// Which registry units a study profiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitSelection {
    /// Every unit in the registry (the paper's 18).
    All,
    /// A named subset. The selection is a *set*: units always run in
    /// canonical registry order whatever order the names are given in,
    /// which keeps artifact keys stable under permutation.
    Named(Vec<String>),
}

/// A complete, self-describing study request.
#[derive(Debug, Clone, PartialEq)]
pub struct StudySpec {
    /// The simulated platform.
    pub config: SocConfig,
    /// Base seed of the noise stream chain.
    pub seed: u64,
    /// Runs per unit (the paper's protocol is 3).
    pub runs: usize,
    /// Baseline fault model applied to every unit without an override.
    pub faults: FaultConfig,
    /// Per-unit fault overrides, kept sorted by unit name (last write per
    /// name wins). Overrides for units outside the selection are inert.
    unit_faults: Vec<(String, FaultConfig)>,
    /// Which units to profile.
    pub units: UnitSelection,
    /// Worker threads for the capture fan-out. Scheduling only — never
    /// part of any content key.
    pub threads: usize,
}

impl StudySpec {
    /// A fault-free spec over the full registry with the default worker
    /// count.
    pub fn new(config: SocConfig, seed: u64, runs: usize) -> Self {
        StudySpec {
            config,
            seed,
            runs,
            faults: FaultConfig::default(),
            unit_faults: Vec::new(),
            units: UnitSelection::All,
            threads: mwc_parallel::configured_threads(),
        }
    }

    /// The paper's default protocol: Snapdragon 888, seed 2024, 3 runs.
    pub fn paper_default() -> Self {
        StudySpec::new(
            SocConfig::snapdragon_888(),
            2024,
            mwc_profiler::capture::PAPER_RUNS,
        )
    }

    /// Replace the baseline fault model.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Override the fault model for one unit (by registry name). Repeated
    /// overrides for the same name replace each other; insertion order is
    /// irrelevant to every key.
    pub fn with_unit_faults(mut self, name: impl Into<String>, faults: FaultConfig) -> Self {
        let name = name.into();
        match self
            .unit_faults
            .binary_search_by(|(n, _)| n.as_str().cmp(name.as_str()))
        {
            Ok(i) => self.unit_faults[i].1 = faults,
            Err(i) => self.unit_faults.insert(i, (name, faults)),
        }
        self
    }

    /// Restrict the study to the named units.
    pub fn with_units<S: Into<String>>(mut self, names: impl IntoIterator<Item = S>) -> Self {
        self.units = UnitSelection::Named(names.into_iter().map(Into::into).collect());
        self
    }

    /// Set the worker-thread count (scheduling only; keys are unaffected).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Layer the `MWC_FAULT_*` environment onto this spec: the env-derived
    /// fault config becomes the baseline, unless [`FAULT_UNITS_ENV`] names
    /// specific units — then only those units get the env plan (as
    /// overrides) and everything else stays on the current baseline.
    pub fn with_env_faults(self) -> Result<Self, PipelineError> {
        let faults = FaultConfig::from_env()?;
        match std::env::var(FAULT_UNITS_ENV) {
            Ok(list) if !list.trim().is_empty() => {
                let mut spec = self;
                for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                    spec = spec.with_unit_faults(name, faults.clone());
                }
                Ok(spec)
            }
            _ => Ok(self.with_faults(faults)),
        }
    }

    /// The fault model unit `name` captures under: its override if one is
    /// set, else the baseline.
    pub fn effective_faults(&self, name: &str) -> &FaultConfig {
        self.unit_faults
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, f)| f)
            .unwrap_or(&self.faults)
    }

    /// The per-unit fault overrides, sorted by unit name.
    pub fn unit_faults(&self) -> &[(String, FaultConfig)] {
        &self.unit_faults
    }

    /// Validate the spec: every fault config (baseline and overrides) and
    /// the unit selection. Platform validation happens at engine
    /// construction inside the pipeline's validate stage.
    pub fn validate(&self) -> Result<(), PipelineError> {
        self.faults.validate()?;
        for (_, f) in &self.unit_faults {
            f.validate()?;
        }
        self.selected()?;
        Ok(())
    }

    /// The selected units as `(registry_index, unit)` pairs in canonical
    /// registry order. The registry index — not the position within the
    /// selection — seeds each unit's noise streams, so a subset study
    /// reproduces exactly the per-unit results of the full study.
    pub fn selected(&self) -> Result<Vec<(usize, BenchmarkUnit)>, PipelineError> {
        let units = all_units();
        match &self.units {
            UnitSelection::All => Ok(units.into_iter().enumerate().collect()),
            UnitSelection::Named(names) => {
                for n in names {
                    if !units.iter().any(|u| u.name == n) {
                        return Err(PipelineError::UnknownUnit(n.clone()));
                    }
                }
                Ok(units
                    .into_iter()
                    .enumerate()
                    .filter(|(_, u)| names.iter().any(|n| n == u.name))
                    .collect())
            }
        }
    }

    /// The content-addressed key of one unit's capture/derive artifact:
    /// a digest of exactly the inputs that reach this unit's simulation.
    /// Threads, other units' overrides and the selection itself are all
    /// excluded — so the same unit under the same conditions shares one
    /// artifact across full and subset studies.
    pub fn unit_key(&self, index: usize, unit: &BenchmarkUnit) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str("mwc-stage-unit");
        h.write_u64(u64::from(CACHE_SCHEMA_VERSION));
        h.write_str(env!("CARGO_PKG_VERSION"));
        h.write_u64(self.seed);
        h.write_usize(self.runs);
        h.write_u64(self.config.content_digest());
        h.write_usize(index);
        h.write_str(unit.name);
        h.write_str(unit.suite.name());
        h.write_str(unit.label.name());
        h.write_u64(self.effective_faults(unit.name).content_digest());
        h.finish()
    }

    /// The whole-study memo key. Byte-compatible with the legacy
    /// [`crate::cache::study_key`] whenever the selection is
    /// [`UnitSelection::All`] and no selected unit's effective fault
    /// config differs from the baseline; per-unit overrides append
    /// `(name, digest)` pairs in registry order.
    pub fn study_key(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_str("mwc-study");
        h.write_u64(u64::from(CACHE_SCHEMA_VERSION));
        h.write_str(env!("CARGO_PKG_VERSION"));
        h.write_u64(self.seed);
        h.write_usize(self.runs);
        h.write_u64(self.config.content_digest());
        h.write_u64(self.faults.content_digest());
        // An invalid selection hashes over the resolvable subset; the spec
        // fails validation before any cached entry could be consulted.
        let selected = self.selected().unwrap_or_default();
        h.write_usize(selected.len());
        for (_, u) in &selected {
            h.write_str(u.name);
            h.write_str(u.suite.name());
            h.write_str(u.label.name());
        }
        let baseline = self.faults.content_digest();
        for (_, u) in &selected {
            let d = self.effective_faults(u.name).content_digest();
            if d != baseline {
                h.write_str(u.name);
                h.write_u64(d);
            }
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::study_key as legacy_study_key;

    fn base() -> StudySpec {
        StudySpec::new(SocConfig::snapdragon_888(), 2024, 3)
    }

    fn active_faults() -> FaultConfig {
        FaultConfig {
            seed: 7,
            dropout_rate: 0.05,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn default_spec_key_matches_legacy_study_key() {
        let spec = base();
        assert_eq!(
            spec.study_key(),
            legacy_study_key(&spec.config, spec.seed, spec.runs, &spec.faults)
        );
        let faulted = base().with_faults(active_faults());
        assert_eq!(
            faulted.study_key(),
            legacy_study_key(&faulted.config, 2024, 3, &active_faults())
        );
    }

    #[test]
    fn threads_never_change_any_key() {
        let a = base().with_threads(1);
        let b = base().with_threads(16);
        assert_eq!(a.study_key(), b.study_key());
        for (i, u) in a.selected().expect("full selection") {
            assert_eq!(a.unit_key(i, &u), b.unit_key(i, &u));
        }
    }

    #[test]
    fn override_invalidates_exactly_one_unit_key() {
        let plain = base();
        let patched = base().with_unit_faults("Antutu CPU", active_faults());
        assert_ne!(plain.study_key(), patched.study_key());
        let mut changed = 0;
        for (i, u) in plain.selected().expect("full selection") {
            if plain.unit_key(i, &u) != patched.unit_key(i, &u) {
                changed += 1;
                assert_eq!(u.name, "Antutu CPU");
            }
        }
        assert_eq!(changed, 1, "exactly one unit artifact invalidated");
    }

    #[test]
    fn override_equal_to_baseline_is_inert() {
        let plain = base();
        let redundant = base().with_unit_faults("Antutu CPU", FaultConfig::default());
        assert_eq!(plain.study_key(), redundant.study_key());
    }

    #[test]
    fn selection_is_canonicalized_to_registry_order() {
        let a = base().with_units(["Geekbench 5 CPU", "Antutu CPU"]);
        let b = base().with_units(["Antutu CPU", "Geekbench 5 CPU"]);
        assert_eq!(a.study_key(), b.study_key());
        let names: Vec<&str> = a
            .selected()
            .expect("known names")
            .iter()
            .map(|(_, u)| u.name)
            .collect();
        assert_eq!(names, ["Antutu CPU", "Geekbench 5 CPU"]);
    }

    #[test]
    fn subset_units_keep_registry_indices_and_keys() {
        let full = base();
        let sub = base().with_units(["Geekbench 5 CPU"]);
        let (full_idx, full_unit) = full
            .selected()
            .expect("full")
            .into_iter()
            .find(|(_, u)| u.name == "Geekbench 5 CPU")
            .expect("registry unit");
        let (sub_idx, sub_unit) = sub.selected().expect("subset").remove(0);
        assert_eq!(full_idx, sub_idx, "registry index survives subsetting");
        assert_eq!(
            full.unit_key(full_idx, &full_unit),
            sub.unit_key(sub_idx, &sub_unit),
            "the same unit shares one artifact across full and subset studies"
        );
    }

    #[test]
    fn unknown_unit_is_a_typed_error() {
        let spec = base().with_units(["No Such Benchmark"]);
        let err = spec.validate().expect_err("unknown unit must fail");
        assert!(matches!(err, PipelineError::UnknownUnit(_)));
        assert!(err.to_string().contains("No Such Benchmark"));
    }

    #[test]
    fn override_outside_selection_is_inert() {
        let a = base().with_units(["Antutu CPU"]);
        let b = base()
            .with_units(["Antutu CPU"])
            .with_unit_faults("Geekbench 5 CPU", active_faults());
        assert_eq!(a.study_key(), b.study_key());
    }

    #[test]
    fn last_override_per_unit_wins() {
        let a = base()
            .with_unit_faults("Antutu CPU", FaultConfig::default())
            .with_unit_faults("Antutu CPU", active_faults());
        let b = base().with_unit_faults("Antutu CPU", active_faults());
        assert_eq!(a.study_key(), b.study_key());
        assert_eq!(a.unit_faults().len(), 1);
    }
}
