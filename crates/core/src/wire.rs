//! The textual wire format for [`StudySpec`] — what `mwc-server` accepts
//! in a `POST /study` body and what clients (the `wrkr` load generator,
//! shell scripts, tests) submit.
//!
//! The format is a line-based `key = value` document with a versioned
//! header, chosen over JSON so hand-written request bodies stay trivial
//! and the parser stays small and total (every malformed input is a typed
//! [`WireError`], never a panic):
//!
//! ```text
//! mwc-spec v1
//! config = snapdragon_888
//! seed = 2024
//! runs = 3
//! units = Antutu CPU, Geekbench 5 CPU      # omitted => all 18
//! fault.seed = 7                           # baseline fault block
//! fault.dropout = 0.05
//! fault[Antutu CPU].jitter = 0.01          # per-unit override
//! ```
//!
//! `#` starts a comment (full-line or trailing); blank lines are ignored.
//! Keys may appear in any order; the last write per key wins, matching
//! [`StudySpec::with_unit_faults`] semantics. The platform is named by
//! preset (`snapdragon_888` is the only one) because an arbitrary
//! [`SocConfig`](mwc_soc::config::SocConfig) has no stable textual form —
//! an unknown preset is a [`WireError::UnknownConfig`], not a fallback.
//!
//! [`to_wire`] and [`from_wire`] round-trip: for any spec whose config is
//! a known preset, `from_wire(&to_wire(spec))` rebuilds a spec with the
//! same [`StudySpec::study_key`] and per-unit keys. Floats are rendered
//! with Rust's shortest-exact formatting, so rates survive the round trip
//! bit-for-bit. The worker-thread count is accepted (`threads = N`) but
//! never serialized — it is scheduling advice, not study content, and the
//! server substitutes its own worker budget anyway.

use std::fmt;

use mwc_profiler::faults::FaultConfig;
use mwc_soc::config::SocConfig;

use crate::spec::{StudySpec, UnitSelection};

/// First line of every wire document; bump the version when the grammar
/// changes incompatibly.
pub const WIRE_HEADER: &str = "mwc-spec v1";

/// A defect in a wire document. Each variant renders a one-line message
/// suitable for a 400 response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The document does not start with [`WIRE_HEADER`].
    BadHeader(String),
    /// A non-comment line has no `=` separator.
    BadLine(String),
    /// A key outside the grammar.
    UnknownKey(String),
    /// A value that does not parse for its key.
    BadValue {
        /// The key whose value failed to parse.
        key: String,
        /// The offending value text.
        value: String,
    },
    /// A `config =` preset this build does not know.
    UnknownConfig(String),
    /// A required key is absent.
    MissingKey(&'static str),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadHeader(line) => {
                write!(f, "bad header {line:?}: expected {WIRE_HEADER:?}")
            }
            WireError::BadLine(line) => write!(f, "bad line {line:?}: expected `key = value`"),
            WireError::UnknownKey(key) => write!(f, "unknown key {key:?}"),
            WireError::BadValue { key, value } => {
                write!(f, "bad value {value:?} for key {key:?}")
            }
            WireError::UnknownConfig(name) => {
                write!(f, "unknown config preset {name:?} (try \"snapdragon_888\")")
            }
            WireError::MissingKey(key) => write!(f, "missing required key {key:?}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The preset names [`from_wire`] resolves, with their constructors.
fn preset(name: &str) -> Option<SocConfig> {
    match name {
        "snapdragon_888" => Some(SocConfig::snapdragon_888()),
        _ => None,
    }
}

/// The preset name of `config`, if it is byte-identical to one the wire
/// format can name.
fn preset_name(config: &SocConfig) -> Option<&'static str> {
    (config == &SocConfig::snapdragon_888()).then_some("snapdragon_888")
}

/// One fault knob inside a `fault.<knob>` / `fault[unit].<knob>` key.
fn apply_knob(f: &mut FaultConfig, knob: &str, key: &str, value: &str) -> Result<(), WireError> {
    let bad = || WireError::BadValue {
        key: key.to_owned(),
        value: value.to_owned(),
    };
    match knob {
        "seed" => f.seed = value.parse().map_err(|_| bad())?,
        "dropout" => f.dropout_rate = value.parse().map_err(|_| bad())?,
        "jitter" => f.jitter_amplitude = value.parse().map_err(|_| bad())?,
        "overflow" => f.overflow_rate = value.parse().map_err(|_| bad())?,
        "truncation" => f.truncation_rate = value.parse().map_err(|_| bad())?,
        "run_failure" => f.run_failure_rate = value.parse().map_err(|_| bad())?,
        "attempts" => f.max_attempts = value.parse().map_err(|_| bad())?,
        "min_completeness" => f.min_completeness = value.parse().map_err(|_| bad())?,
        _ => return Err(WireError::UnknownKey(key.to_owned())),
    }
    Ok(())
}

/// Render every knob of one fault block under `prefix`.
fn render_faults(out: &mut String, prefix: &str, f: &FaultConfig) {
    use fmt::Write as _;
    let _ = writeln!(out, "{prefix}.seed = {}", f.seed);
    let _ = writeln!(out, "{prefix}.dropout = {}", f.dropout_rate);
    let _ = writeln!(out, "{prefix}.jitter = {}", f.jitter_amplitude);
    let _ = writeln!(out, "{prefix}.overflow = {}", f.overflow_rate);
    let _ = writeln!(out, "{prefix}.truncation = {}", f.truncation_rate);
    let _ = writeln!(out, "{prefix}.run_failure = {}", f.run_failure_rate);
    let _ = writeln!(out, "{prefix}.attempts = {}", f.max_attempts);
    let _ = writeln!(out, "{prefix}.min_completeness = {}", f.min_completeness);
}

/// Serialize `spec` as a wire document.
///
/// The config must be a known preset — otherwise
/// [`WireError::UnknownConfig`] is returned, because a config the wire
/// format cannot name cannot be reproduced on the other end. Default
/// fault blocks are omitted; non-default blocks render every knob so the
/// document is self-contained under future default changes.
pub fn to_wire(spec: &StudySpec) -> Result<String, WireError> {
    use fmt::Write as _;
    let config = preset_name(&spec.config)
        .ok_or_else(|| WireError::UnknownConfig(spec.config.name.clone()))?;
    let mut out = String::new();
    let _ = writeln!(out, "{WIRE_HEADER}");
    let _ = writeln!(out, "config = {config}");
    let _ = writeln!(out, "seed = {}", spec.seed);
    let _ = writeln!(out, "runs = {}", spec.runs);
    if let UnitSelection::Named(names) = &spec.units {
        let _ = writeln!(out, "units = {}", names.join(", "));
    }
    if spec.faults != FaultConfig::default() {
        render_faults(&mut out, "fault", &spec.faults);
    }
    for (name, f) in spec.unit_faults() {
        render_faults(&mut out, &format!("fault[{name}]"), f);
    }
    Ok(out)
}

/// [`to_wire`] plus an explicit `threads = N` line.
///
/// This is the form the fleet coordinator ships to subprocess workers:
/// `threads` is scheduling-only (never part of a content key, and
/// omitted by [`to_wire`] so cache-facing documents stay canonical), but
/// the worker should still honour the coordinator's per-shard thread
/// budget, so the hint has to survive the hop.
pub fn to_wire_with_threads(spec: &StudySpec) -> Result<String, WireError> {
    use fmt::Write as _;
    let mut out = to_wire(spec)?;
    let _ = writeln!(out, "threads = {}", spec.threads);
    Ok(out)
}

/// Parse a wire document into a [`StudySpec`].
///
/// The result is *not* validated beyond the grammar — callers run
/// [`StudySpec::validate`] next, so an unknown unit name or an
/// out-of-range fault rate is reported through the pipeline's existing
/// typed errors rather than duplicated here.
pub fn from_wire(text: &str) -> Result<StudySpec, WireError> {
    let mut lines = text
        .lines()
        .map(|l| match l.find('#') {
            Some(i) => &l[..i],
            None => l,
        })
        .map(str::trim)
        .filter(|l| !l.is_empty());
    match lines.next() {
        Some(l) if l == WIRE_HEADER => {}
        other => return Err(WireError::BadHeader(other.unwrap_or("").to_owned())),
    }

    let mut config: Option<SocConfig> = None;
    let mut seed: Option<u64> = None;
    let mut runs: Option<usize> = None;
    let mut units: Option<Vec<String>> = None;
    let mut threads: Option<usize> = None;
    let mut faults = FaultConfig::default();
    let mut unit_faults: Vec<(String, FaultConfig)> = Vec::new();

    for line in lines {
        let Some((key, value)) = line.split_once('=') else {
            return Err(WireError::BadLine(line.to_owned()));
        };
        let (key, value) = (key.trim(), value.trim());
        let bad = || WireError::BadValue {
            key: key.to_owned(),
            value: value.to_owned(),
        };
        match key {
            "config" => {
                config =
                    Some(preset(value).ok_or_else(|| WireError::UnknownConfig(value.to_owned()))?);
            }
            "seed" => seed = Some(value.parse().map_err(|_| bad())?),
            "runs" => runs = Some(value.parse().map_err(|_| bad())?),
            "threads" => threads = Some(value.parse().map_err(|_| bad())?),
            "units" => {
                units = Some(
                    value
                        .split(',')
                        .map(str::trim)
                        .filter(|s| !s.is_empty())
                        .map(str::to_owned)
                        .collect(),
                );
            }
            _ if key.starts_with("fault[") => {
                // fault[<unit>].<knob>
                let rest = &key["fault[".len()..];
                let Some((unit, knob)) = rest.split_once("].") else {
                    return Err(WireError::UnknownKey(key.to_owned()));
                };
                let unit = unit.trim();
                if unit.is_empty() {
                    return Err(WireError::UnknownKey(key.to_owned()));
                }
                let slot = match unit_faults.iter_mut().find(|(n, _)| n == unit) {
                    Some((_, f)) => f,
                    None => {
                        unit_faults.push((unit.to_owned(), FaultConfig::default()));
                        &mut unit_faults.last_mut().expect("just pushed").1
                    }
                };
                apply_knob(slot, knob, key, value)?;
            }
            _ if key.starts_with("fault.") => {
                apply_knob(&mut faults, &key["fault.".len()..], key, value)?;
            }
            _ => return Err(WireError::UnknownKey(key.to_owned())),
        }
    }

    let config = config.ok_or(WireError::MissingKey("config"))?;
    let seed = seed.ok_or(WireError::MissingKey("seed"))?;
    let runs = runs.ok_or(WireError::MissingKey("runs"))?;
    let mut spec = StudySpec::new(config, seed, runs).with_faults(faults);
    if let Some(names) = units {
        spec = spec.with_units(names);
    }
    if let Some(threads) = threads {
        spec = spec.with_threads(threads);
    }
    for (name, f) in unit_faults {
        spec = spec.with_unit_faults(name, f);
    }
    Ok(spec)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active() -> FaultConfig {
        FaultConfig {
            seed: 7,
            dropout_rate: 0.05,
            jitter_amplitude: 0.012_345_678_9,
            ..FaultConfig::default()
        }
    }

    #[test]
    fn default_spec_round_trips() {
        let spec = StudySpec::paper_default();
        let text = to_wire(&spec).expect("preset config serializes");
        let back = from_wire(&text).expect("parses");
        assert_eq!(back.study_key(), spec.study_key());
        for (i, u) in spec.selected().expect("full selection") {
            assert_eq!(back.unit_key(i, &u), spec.unit_key(i, &u));
        }
    }

    #[test]
    fn faulted_subset_spec_round_trips_bit_exactly() {
        let spec = StudySpec::paper_default()
            .with_faults(active())
            .with_units(["Antutu CPU", "Geekbench 5 CPU"])
            .with_unit_faults(
                "Antutu CPU",
                FaultConfig {
                    truncation_rate: 0.055,
                    ..active()
                },
            );
        let text = to_wire(&spec).expect("serializes");
        let back = from_wire(&text).expect("parses");
        assert_eq!(back.study_key(), spec.study_key());
        assert_eq!(back.unit_faults(), spec.unit_faults());
        assert_eq!(back.faults, spec.faults);
    }

    #[test]
    fn comments_blanks_and_order_are_tolerated() {
        let text = "\n# a request\nmwc-spec v1\nruns = 3   # trailing\n\nseed = 2024\nconfig = snapdragon_888\n";
        let spec = from_wire(text).expect("parses");
        assert_eq!(spec.seed, 2024);
        assert_eq!(spec.runs, 3);
        assert_eq!(spec.study_key(), StudySpec::paper_default().study_key());
    }

    #[test]
    fn threads_are_accepted_but_not_serialized() {
        let spec =
            from_wire("mwc-spec v1\nconfig = snapdragon_888\nseed = 1\nruns = 1\nthreads = 3\n")
                .expect("parses");
        assert_eq!(spec.threads, 3);
        let text = to_wire(&spec).expect("serializes");
        assert!(!text.contains("threads"));
    }

    #[test]
    fn every_defect_is_a_typed_error() {
        let cases: &[(&str, WireError)] = &[
            ("", WireError::BadHeader(String::new())),
            (
                "mwc-spec v2\nseed = 1",
                WireError::BadHeader("mwc-spec v2".to_owned()),
            ),
            (
                "mwc-spec v1\nnot a kv line",
                WireError::BadLine("not a kv line".to_owned()),
            ),
            (
                "mwc-spec v1\nwhat = 1",
                WireError::UnknownKey("what".to_owned()),
            ),
            (
                "mwc-spec v1\nseed = many",
                WireError::BadValue {
                    key: "seed".to_owned(),
                    value: "many".to_owned(),
                },
            ),
            (
                "mwc-spec v1\nconfig = dimensity_9000",
                WireError::UnknownConfig("dimensity_9000".to_owned()),
            ),
            (
                "mwc-spec v1\nfault[].seed = 1",
                WireError::UnknownKey("fault[].seed".to_owned()),
            ),
            (
                "mwc-spec v1\nfault.warp = 1",
                WireError::UnknownKey("fault.warp".to_owned()),
            ),
            (
                "mwc-spec v1\nconfig = snapdragon_888\nseed = 1",
                WireError::MissingKey("runs"),
            ),
        ];
        for (text, want) in cases {
            let got = from_wire(text).expect_err("must fail");
            assert_eq!(&got, want, "for input {text:?}");
            assert!(!got.to_string().is_empty());
        }
    }

    #[test]
    fn last_write_wins_per_key() {
        let text = "mwc-spec v1\nconfig = snapdragon_888\nseed = 1\nseed = 2\nruns = 3\n";
        assert_eq!(from_wire(text).expect("parses").seed, 2);
    }

    #[test]
    fn non_preset_config_cannot_serialize() {
        let mut config = SocConfig::snapdragon_888();
        config.memory.capacity_mib += 1.0;
        let spec = StudySpec::new(config, 1, 1);
        assert!(matches!(to_wire(&spec), Err(WireError::UnknownConfig(_))));
    }
}
