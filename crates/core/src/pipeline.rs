//! The characterization pipeline: run all units, average runs, collect
//! profiles.

use mwc_profiler::capture::{Profiler, SeriesKey, PAPER_RUNS};
use mwc_profiler::derive::BenchmarkMetrics;
use mwc_profiler::timeseries::TimeSeries;
use mwc_soc::config::{ClusterKind, SocConfig};
use mwc_soc::engine::Engine;
use mwc_workloads::registry::{all_units, BenchmarkUnit, ClusterLabel, Suite};

/// The per-unit time series the temporal and heterogeneity analyses use.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitSeries {
    /// Mean CPU load across clusters (Table IV).
    pub cpu_load: TimeSeries,
    /// Load of the little cluster.
    pub little_load: TimeSeries,
    /// Load of the mid cluster.
    pub mid_load: TimeSeries,
    /// Load of the big cluster.
    pub big_load: TimeSeries,
    /// GPU load (Table IV).
    pub gpu_load: TimeSeries,
    /// Fraction of time all shaders are busy (Table IV).
    pub shaders_busy: TimeSeries,
    /// Fraction of time the GPU bus is busy (Table IV).
    pub bus_busy: TimeSeries,
    /// AIE load (Table IV).
    pub aie_load: TimeSeries,
    /// Fraction of system memory in use (Table IV).
    pub memory_fraction: TimeSeries,
    /// Raw used memory in MiB.
    pub memory_mib: TimeSeries,
    /// Instantaneous IPC.
    pub ipc: TimeSeries,
    /// Storage busy fraction.
    pub storage_busy: TimeSeries,
}

/// The profile of one characterization unit: averaged metrics plus the
/// averaged time series.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitProfile {
    /// Unit name as the paper's figures label it.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// Ground-truth behavioural family (colour group in Figure 1).
    pub label: ClusterLabel,
    /// Aggregate metrics averaged over the runs.
    pub metrics: BenchmarkMetrics,
    /// Run-averaged time series.
    pub series: UnitSeries,
}

/// The full study: one profile per characterization unit.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    profiles: Vec<UnitProfile>,
}

impl Characterization {
    /// Run the complete study on the paper's platform (Snapdragon 888,
    /// Table II) with the paper's three-run protocol and the default seed.
    pub fn run_default() -> Self {
        Characterization::run(SocConfig::snapdragon_888(), 2024, PAPER_RUNS)
    }

    /// Run the study on an arbitrary platform with `runs` runs per unit,
    /// fanning the units across `MWC_THREADS` worker threads (default:
    /// the machine's available parallelism).
    ///
    /// Whatever the worker count, the result is bit-identical to a serial
    /// run: every capture's noise stream is derived from
    /// `(seed, unit_index, run_index)` alone (see
    /// [`mwc_soc::engine::stream_seed`]), each worker owns a private
    /// engine, and profiles are collected in unit order.
    ///
    /// # Panics
    /// Panics if the configuration fails validation — configurations are
    /// produced by [`SocConfig::builder`] which validates on `build`, so an
    /// invalid one reaching this point is a programming error.
    pub fn run(config: SocConfig, seed: u64, runs: usize) -> Self {
        Characterization::run_with_threads(config, seed, runs, mwc_parallel::configured_threads())
    }

    /// [`Characterization::run`] with an explicit worker count
    /// (`threads <= 1` runs serially on the calling thread).
    pub fn run_with_threads(config: SocConfig, seed: u64, runs: usize, threads: usize) -> Self {
        let units = all_units();
        let profiles = mwc_parallel::ordered_map_with(
            &units,
            threads,
            || {
                let engine =
                    Engine::new(config.clone(), seed).expect("validated SoC configuration");
                Profiler::new(engine, seed)
            },
            |profiler, unit, unit_index| profile_unit(profiler, unit, unit_index, runs),
        );
        Characterization { profiles }
    }

    /// The unit profiles, in the paper's fixed order.
    pub fn profiles(&self) -> &[UnitProfile] {
        &self.profiles
    }

    /// Find a profile by unit name.
    pub fn profile(&self, name: &str) -> Option<&UnitProfile> {
        self.profiles.iter().find(|p| p.name == name)
    }

    /// Unit names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.profiles.iter().map(|p| p.name.as_str()).collect()
    }

    /// Runtimes in seconds, in unit order.
    pub fn runtimes(&self) -> Vec<f64> {
        self.profiles
            .iter()
            .map(|p| p.metrics.runtime_seconds)
            .collect()
    }
}

/// Profile one unit: capture its runs on the worker's engine and average
/// metrics and series across them. A pure function of
/// `(profiler seed/config, unit, unit_index, runs)`, which is what makes
/// the parallel fan-out reproducible.
fn profile_unit(
    profiler: &mut Profiler,
    unit: &BenchmarkUnit,
    unit_index: usize,
    runs: usize,
) -> UnitProfile {
    let captures = profiler.capture_unit_runs(&unit.workload, unit_index, runs);
    let metrics = BenchmarkMetrics::from_captures(&captures);
    let avg = |key: SeriesKey| {
        let series: Vec<TimeSeries> = captures.iter().map(|c| c.series(key)).collect();
        TimeSeries::average(&series)
    };
    let series = UnitSeries {
        cpu_load: avg(SeriesKey::CpuLoad),
        little_load: avg(SeriesKey::ClusterLoad(ClusterKind::Little)),
        mid_load: avg(SeriesKey::ClusterLoad(ClusterKind::Mid)),
        big_load: avg(SeriesKey::ClusterLoad(ClusterKind::Big)),
        gpu_load: avg(SeriesKey::GpuLoad),
        shaders_busy: avg(SeriesKey::GpuShadersBusy),
        bus_busy: avg(SeriesKey::GpuBusBusy),
        aie_load: avg(SeriesKey::AieLoad),
        memory_fraction: avg(SeriesKey::MemoryUsedFraction),
        memory_mib: avg(SeriesKey::MemoryUsedMib),
        ipc: avg(SeriesKey::Ipc),
        storage_busy: avg(SeriesKey::StorageBusy),
    };
    UnitProfile {
        name: unit.name.to_owned(),
        suite: unit.suite,
        label: unit.label,
        metrics,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full 3-run study is exercised by integration tests and the bench
    // harness; unit tests here use a single run to stay fast.
    fn quick_study() -> Characterization {
        Characterization::run(SocConfig::snapdragon_888(), 7, 1)
    }

    #[test]
    fn covers_all_eighteen_units() {
        let study = quick_study();
        assert_eq!(study.profiles().len(), 18);
        assert!(study.profile("Antutu Mem").is_some());
        assert!(study.profile("GFXBench Special").is_some());
        assert!(study.profile("nonexistent").is_none());
    }

    #[test]
    fn runtimes_match_workload_durations() {
        let study = quick_study();
        let total: f64 = study.runtimes().iter().sum();
        assert!((total - 4429.5).abs() < 1.0, "got {total}");
    }

    #[test]
    fn every_unit_executes_instructions() {
        let study = quick_study();
        for p in study.profiles() {
            assert!(p.metrics.instruction_count > 0.0, "{}", p.name);
            assert!(p.metrics.ipc > 0.0, "{}", p.name);
        }
    }

    #[test]
    fn series_span_the_runtime() {
        let study = quick_study();
        let p = study.profile("3DMark Wild Life").unwrap();
        assert!((p.series.cpu_load.duration_seconds() - 65.0).abs() < 0.2);
        assert_eq!(p.series.cpu_load.len(), p.series.gpu_load.len());
    }

    #[test]
    fn study_is_deterministic() {
        let a = Characterization::run(SocConfig::snapdragon_888(), 9, 1);
        let b = Characterization::run(SocConfig::snapdragon_888(), 9, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_study_is_bit_identical_to_serial() {
        let serial = Characterization::run_with_threads(SocConfig::snapdragon_888(), 9, 1, 1);
        let parallel = Characterization::run_with_threads(SocConfig::snapdragon_888(), 9, 1, 4);
        assert_eq!(serial, parallel);
    }
}
