//! The characterization pipeline: run all units, average runs, collect
//! profiles — and, when a fault model is active, retry flaky captures,
//! quorum-merge surviving runs, and degrade gracefully instead of
//! aborting.

use mwc_profiler::capture::{Profiler, SeriesKey, SeriesMap, PAPER_RUNS};
use mwc_profiler::derive::BenchmarkMetrics;
use mwc_profiler::faults::{CaptureError, CaptureHealth, FaultConfig};
use mwc_profiler::timeseries::TimeSeries;
use mwc_soc::config::{ClusterKind, SocConfig};
use mwc_workloads::registry::{BenchmarkUnit, ClusterLabel, Suite};

use crate::error::PipelineError;
use crate::spec::StudySpec;

/// The per-unit time series the temporal and heterogeneity analyses use.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitSeries {
    /// Mean CPU load across clusters (Table IV).
    pub cpu_load: TimeSeries,
    /// Load of the little cluster.
    pub little_load: TimeSeries,
    /// Load of the mid cluster.
    pub mid_load: TimeSeries,
    /// Load of the big cluster.
    pub big_load: TimeSeries,
    /// GPU load (Table IV).
    pub gpu_load: TimeSeries,
    /// Fraction of time all shaders are busy (Table IV).
    pub shaders_busy: TimeSeries,
    /// Fraction of time the GPU bus is busy (Table IV).
    pub bus_busy: TimeSeries,
    /// AIE load (Table IV).
    pub aie_load: TimeSeries,
    /// Fraction of system memory in use (Table IV).
    pub memory_fraction: TimeSeries,
    /// Raw used memory in MiB.
    pub memory_mib: TimeSeries,
    /// Instantaneous IPC.
    pub ipc: TimeSeries,
    /// Storage busy fraction.
    pub storage_busy: TimeSeries,
}

/// The profile of one characterization unit: averaged metrics plus the
/// averaged time series and a record of what the capture cost.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitProfile {
    /// Unit name as the paper's figures label it.
    pub name: String,
    /// Owning suite.
    pub suite: Suite,
    /// Ground-truth behavioural family (colour group in Figure 1).
    pub label: ClusterLabel,
    /// Aggregate metrics averaged (or quorum-merged) over the runs.
    pub metrics: BenchmarkMetrics,
    /// Run-averaged time series.
    pub series: UnitSeries,
    /// What the retry/quorum machinery had to do for this unit.
    pub health: CaptureHealth,
}

/// One unit the study had to give up on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedUnit {
    /// Unit name as the paper's figures label it.
    pub name: String,
    /// Rendered capture error.
    pub error: String,
}

/// Pipeline-level degradation report: which units survived, which were
/// excluded, and how much the capture layer had to intervene.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DegradationReport {
    /// Units the study requested.
    pub units_requested: usize,
    /// Units whose every capture attempt failed; excluded from analysis.
    pub failed_units: Vec<FailedUnit>,
}

impl DegradationReport {
    /// Units that produced a usable profile.
    pub fn units_profiled(&self) -> usize {
        self.units_requested - self.failed_units.len()
    }

    /// Whether any unit had to be excluded.
    pub fn is_degraded(&self) -> bool {
        !self.failed_units.is_empty()
    }

    /// One-line human summary ("18/18 units profiled" or worse).
    pub fn summary(&self) -> String {
        if !self.is_degraded() {
            return format!(
                "{}/{} units profiled",
                self.units_profiled(),
                self.units_requested
            );
        }
        let names: Vec<&str> = self.failed_units.iter().map(|f| f.name.as_str()).collect();
        format!(
            "{}/{} units profiled (excluded: {})",
            self.units_profiled(),
            self.units_requested,
            names.join(", ")
        )
    }
}

/// The full study: one profile per characterization unit that survived,
/// plus a degradation report for the ones that did not.
#[derive(Debug, Clone, PartialEq)]
pub struct Characterization {
    pub(crate) profiles: Vec<UnitProfile>,
    pub(crate) report: DegradationReport,
}

impl Characterization {
    /// Run the complete study on the paper's platform (Snapdragon 888,
    /// Table II) with the paper's three-run protocol and the default seed.
    pub fn run_default() -> Self {
        Characterization::run(SocConfig::snapdragon_888(), 2024, PAPER_RUNS)
    }

    /// Run the study on an arbitrary platform with `runs` runs per unit,
    /// fanning the units across `MWC_THREADS` worker threads (default:
    /// the machine's available parallelism).
    ///
    /// Whatever the worker count, the result is bit-identical to a serial
    /// run: every capture's noise stream is derived from
    /// `(seed, unit_index, run_index)` alone (see
    /// [`mwc_soc::engine::stream_seed`]), each worker owns a private
    /// engine, and profiles are collected in unit order.
    ///
    /// # Panics
    /// Panics if the configuration fails validation — configurations are
    /// produced by [`SocConfig::builder`] which validates on `build`, so an
    /// invalid one reaching this point is a programming error. Use
    /// [`Characterization::try_run_with`] to handle the error instead.
    pub fn run(config: SocConfig, seed: u64, runs: usize) -> Self {
        Characterization::run_with_threads(config, seed, runs, mwc_parallel::configured_threads())
    }

    /// [`Characterization::run`] with an explicit worker count
    /// (`threads <= 1` runs serially on the calling thread).
    ///
    /// # Panics
    /// As [`Characterization::run`].
    pub fn run_with_threads(config: SocConfig, seed: u64, runs: usize, threads: usize) -> Self {
        Characterization::try_run_with(config, seed, runs, threads, &FaultConfig::default())
            .expect("fault-free study on a validated configuration cannot fail")
    }

    /// Run the study under a fault model. Failed or truncated runs are
    /// retried with fresh derived seeds (bounded by `faults.max_attempts`),
    /// surviving runs are quorum-merged (median with MAD outlier
    /// rejection), and units whose every attempt fails are excluded and
    /// listed in the [`DegradationReport`] rather than aborting the study.
    ///
    /// With [`FaultConfig::default`] (faults off) the result is
    /// bit-identical to [`Characterization::run`] for any worker count.
    pub fn try_run_with(
        config: SocConfig,
        seed: u64,
        runs: usize,
        threads: usize,
        faults: &FaultConfig,
    ) -> Result<Self, PipelineError> {
        let spec = StudySpec::new(config, seed, runs)
            .with_faults(faults.clone())
            .with_threads(threads);
        Characterization::try_run_spec(&spec)
    }

    /// Run the study described by a [`StudySpec`] through the stage graph,
    /// without any cache: every stage computes. For a full-registry spec
    /// this is bit-identical to [`Characterization::try_run_with`] — the
    /// spec API additionally supports per-unit fault overrides and unit
    /// selection.
    pub fn try_run_spec(spec: &StudySpec) -> Result<Self, PipelineError> {
        crate::stages::execute(spec, None)
    }

    /// The unit profiles, in the paper's fixed order (failed units are
    /// absent — consult [`Characterization::report`]).
    pub fn profiles(&self) -> &[UnitProfile] {
        &self.profiles
    }

    /// The degradation report: units requested vs. profiled and why.
    pub fn report(&self) -> &DegradationReport {
        &self.report
    }

    /// Per-unit capture-health summaries, in profile order.
    pub fn health_report(&self) -> Vec<(String, String)> {
        self.profiles
            .iter()
            .map(|p| (p.name.clone(), p.health.summary()))
            .collect()
    }

    /// Find a profile by unit name.
    pub fn profile(&self, name: &str) -> Option<&UnitProfile> {
        self.profiles.iter().find(|p| p.name == name)
    }

    /// Unit names, in order.
    pub fn names(&self) -> Vec<&str> {
        self.profiles.iter().map(|p| p.name.as_str()).collect()
    }

    /// Runtimes in seconds, in unit order.
    pub fn runtimes(&self) -> Vec<f64> {
        self.profiles
            .iter()
            .map(|p| p.metrics.runtime_seconds)
            .collect()
    }

    /// An order-sensitive FNV-1a fingerprint of everything the study
    /// produced: unit names/suites/labels, every derived metric, every
    /// sample of every time series, capture health, and the degradation
    /// report. Two studies are bit-identical iff their digests match —
    /// which is how the observability-neutrality checks compare a traced
    /// run against an untraced one without serializing whole studies.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        h.write_usize(self.profiles.len());
        for p in &self.profiles {
            digest_profile_into(&mut h, p);
        }
        h.write_usize(self.report.units_requested);
        for f in &self.report.failed_units {
            h.write_str(&f.name);
            h.write_str(&f.error);
        }
        h.finish()
    }
}

impl UnitProfile {
    /// An order-sensitive FNV-1a fingerprint of one unit's profile — the
    /// per-profile slice of [`Characterization::digest`], used to verify
    /// cached unit artifacts on load.
    pub fn digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        digest_profile_into(&mut h, self);
        h.finish()
    }
}

/// Feed one profile into a digest, in the byte order
/// [`Characterization::digest`] has always used (identity, 19 metrics,
/// 12 series, 9 health counters).
fn digest_profile_into(h: &mut Fnv1a, p: &UnitProfile) {
    h.write_str(&p.name);
    h.write_str(p.suite.name());
    h.write_str(p.label.name());
    let m = &p.metrics;
    h.write_str(&m.name);
    for v in [
        m.instruction_count,
        m.ipc,
        m.cache_mpki,
        m.branch_mpki,
        m.runtime_seconds,
        m.cpu_load,
        m.cpu_little_load,
        m.cpu_mid_load,
        m.cpu_big_load,
        m.cpu_little_util,
        m.cpu_mid_util,
        m.cpu_big_util,
        m.gpu_load,
        m.gpu_shaders_busy,
        m.gpu_bus_busy,
        m.aie_load,
        m.memory_used_fraction,
        m.memory_peak_mib,
        m.storage_busy,
    ] {
        h.write_f64(v);
    }
    let s = &p.series;
    for series in [
        &s.cpu_load,
        &s.little_load,
        &s.mid_load,
        &s.big_load,
        &s.gpu_load,
        &s.shaders_busy,
        &s.bus_busy,
        &s.aie_load,
        &s.memory_fraction,
        &s.memory_mib,
        &s.ipc,
        &s.storage_busy,
    ] {
        h.write_f64(series.tick_seconds);
        h.write_usize(series.values.len());
        for &v in &series.values {
            h.write_f64(v);
        }
    }
    for v in [
        p.health.runs_requested,
        p.health.runs_used,
        p.health.attempts,
        p.health.retries,
        p.health.failed_runs,
        p.health.truncated_runs,
        p.health.dropped_samples,
        p.health.overflow_wraps,
        p.health.outliers_rejected,
    ] {
        h.write_usize(v);
    }
}

/// Minimal 64-bit FNV-1a accumulator backing [`Characterization::digest`]
/// and the content-addressed cache keys in [`crate::cache`].
pub(crate) struct Fnv1a(u64);

impl Fnv1a {
    pub(crate) fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        self.write_bytes(s.as_bytes());
    }

    pub(crate) fn write_f64(&mut self, v: f64) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub(crate) fn write_usize(&mut self, v: usize) {
        self.write_bytes(&(v as u64).to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Run `f` inside a named pipeline-stage span, feeding its wall time into
/// the `pipeline.stage_ns` histogram. Pure pass-through when observability
/// is disabled.
pub(crate) fn stage<R>(name: &str, f: impl FnOnce() -> R) -> R {
    let stage_span = mwc_obs::span(name);
    let result = f();
    if let Some(ns) = stage_span.elapsed_ns() {
        mwc_obs::metrics::observe_duration_ns("pipeline.stage_ns", ns);
    }
    result
}

/// The capture stage of one unit: run it on the worker's engine (retrying
/// under the fault model) and hand back the per-run series maps plus the
/// capture-health record. A pure function of `(profiler seed/config, unit,
/// unit_index, runs, faults)`, which is what makes the parallel fan-out —
/// and the content-addressed unit artifacts — reproducible.
pub(crate) fn capture_stage(
    profiler: &mut Profiler,
    unit: &BenchmarkUnit,
    unit_index: usize,
    runs: usize,
    faults: &FaultConfig,
) -> Result<(Vec<SeriesMap>, CaptureHealth), CaptureError> {
    let mut span = mwc_obs::span("stage.capture");
    span.field("unit", unit.name);
    let (captures, health) =
        profiler.capture_unit_runs_resilient(&unit.workload, unit_index, runs, faults)?;
    Ok((captures.iter().map(|c| c.series_map()).collect(), health))
}

/// The derive stage of one unit: merge the captured runs into averaged
/// (or quorum-merged) metrics and gap-bridged time series. Deterministic
/// given the capture stage's output.
pub(crate) fn derive_stage(
    unit: &BenchmarkUnit,
    maps: &[SeriesMap],
    mut health: CaptureHealth,
    faults: &FaultConfig,
) -> UnitProfile {
    let mut span = mwc_obs::span("stage.derive");
    span.field("unit", unit.name);
    let metrics = if faults.enabled() {
        let (metrics, outliers) = BenchmarkMetrics::robust_from_series_maps(maps);
        health.outliers_rejected = outliers;
        metrics
    } else {
        BenchmarkMetrics::from_series_maps(maps)
    };
    let avg = |key: SeriesKey| {
        let series: Vec<TimeSeries> = maps.iter().map(|m| m.series(key)).collect();
        let averaged = TimeSeries::average(&series);
        if faults.enabled() {
            // Ticks every surviving run dropped stay NaN after averaging;
            // bridge them so the temporal analyses see a gapless series.
            averaged.interpolate_gaps()
        } else {
            averaged
        }
    };
    let series = UnitSeries {
        cpu_load: avg(SeriesKey::CpuLoad),
        little_load: avg(SeriesKey::ClusterLoad(ClusterKind::Little)),
        mid_load: avg(SeriesKey::ClusterLoad(ClusterKind::Mid)),
        big_load: avg(SeriesKey::ClusterLoad(ClusterKind::Big)),
        gpu_load: avg(SeriesKey::GpuLoad),
        shaders_busy: avg(SeriesKey::GpuShadersBusy),
        bus_busy: avg(SeriesKey::GpuBusBusy),
        aie_load: avg(SeriesKey::AieLoad),
        memory_fraction: avg(SeriesKey::MemoryUsedFraction),
        memory_mib: avg(SeriesKey::MemoryUsedMib),
        ipc: avg(SeriesKey::Ipc),
        storage_busy: avg(SeriesKey::StorageBusy),
    };
    UnitProfile {
        name: unit.name.to_owned(),
        suite: unit.suite,
        label: unit.label,
        metrics,
        series,
        health,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full 3-run study is exercised by integration tests and the bench
    // harness; unit tests here use a single run to stay fast.
    fn quick_study() -> Characterization {
        Characterization::run(SocConfig::snapdragon_888(), 7, 1)
    }

    #[test]
    fn covers_all_eighteen_units() {
        let study = quick_study();
        assert_eq!(study.profiles().len(), 18);
        assert!(study.profile("Antutu Mem").is_some());
        assert!(study.profile("GFXBench Special").is_some());
        assert!(study.profile("nonexistent").is_none());
        assert!(!study.report().is_degraded());
        assert_eq!(study.report().summary(), "18/18 units profiled");
    }

    #[test]
    fn runtimes_match_workload_durations() {
        let study = quick_study();
        let total: f64 = study.runtimes().iter().sum();
        assert!((total - 4429.5).abs() < 1.0, "got {total}");
    }

    #[test]
    fn every_unit_executes_instructions() {
        let study = quick_study();
        for p in study.profiles() {
            assert!(p.metrics.instruction_count > 0.0, "{}", p.name);
            assert!(p.metrics.ipc > 0.0, "{}", p.name);
            assert!(p.health.is_clean(), "{}", p.name);
        }
    }

    #[test]
    fn series_span_the_runtime() {
        let study = quick_study();
        let p = study.profile("3DMark Wild Life").expect("known unit");
        assert!((p.series.cpu_load.duration_seconds() - 65.0).abs() < 0.2);
        assert_eq!(p.series.cpu_load.len(), p.series.gpu_load.len());
    }

    #[test]
    fn study_is_deterministic() {
        let a = Characterization::run(SocConfig::snapdragon_888(), 9, 1);
        let b = Characterization::run(SocConfig::snapdragon_888(), 9, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_study_is_bit_identical_to_serial() {
        let serial = Characterization::run_with_threads(SocConfig::snapdragon_888(), 9, 1, 1);
        let parallel = Characterization::run_with_threads(SocConfig::snapdragon_888(), 9, 1, 4);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn faulty_study_is_deterministic_across_thread_counts() {
        let faults = FaultConfig {
            seed: 11,
            dropout_rate: 0.05,
            truncation_rate: 0.1,
            ..FaultConfig::default()
        };
        let serial = Characterization::try_run_with(SocConfig::snapdragon_888(), 9, 1, 1, &faults)
            .expect("faulty study still completes");
        let parallel =
            Characterization::try_run_with(SocConfig::snapdragon_888(), 9, 1, 4, &faults)
                .expect("faulty study still completes");
        // Metric aggregates are NaN-free after the robust merge, so direct
        // equality is meaningful.
        assert_eq!(serial.names(), parallel.names());
        for (a, b) in serial.profiles().iter().zip(parallel.profiles()) {
            assert_eq!(a.metrics, b.metrics, "{}", a.name);
            assert_eq!(a.health, b.health, "{}", a.name);
        }
    }

    #[test]
    fn all_runs_failing_yields_study_empty() {
        let faults = FaultConfig {
            seed: 3,
            run_failure_rate: 1.0,
            max_attempts: 2,
            ..FaultConfig::default()
        };
        let err = Characterization::try_run_with(SocConfig::snapdragon_888(), 9, 1, 2, &faults)
            .expect_err("study must fail");
        assert!(matches!(err, PipelineError::StudyEmpty { requested: 18 }));
    }

    #[test]
    fn invalid_fault_config_is_rejected() {
        let faults = FaultConfig {
            dropout_rate: 2.0,
            ..FaultConfig::default()
        };
        let err = Characterization::try_run_with(SocConfig::snapdragon_888(), 9, 1, 1, &faults)
            .expect_err("study must fail");
        assert!(matches!(err, PipelineError::Capture(_)));
    }
}
