//! Feature matrices: the Figure-1 metric vectors and the clustering input.
//!
//! Extraction is the *featurize* stage of the study graph: every figure,
//! table and subset evaluation consumes these matrices rather than raw
//! profiles. [`featurize`] bundles them into a [`FeatureSet`] that
//! [`crate::cache::StudyCache::features`] memoizes by study digest, so
//! analysis-only callers never recompute them and — with warm stage
//! artifacts — never simulate either.

use mwc_analysis::error::AnalysisError;
use mwc_analysis::matrix::Matrix;
use mwc_analysis::stats::{normalize_columns, NormalizeMode};

use crate::pipeline::Characterization;

/// Names of the Figure-1 metrics, in column order of [`fig1_matrix`].
pub const FIG1_METRICS: [&str; 5] = ["IC", "IPC", "Cache MPKI", "Branch MPKI", "Runtime"];

/// Names of the clustering features, in column order of
/// [`clustering_matrix`].
///
/// Following the paper ("we average the metrics across the benchmarks'
/// runtime", §VI-A), the clustering input is the set of *time-averaged*
/// behavioural metrics; the run totals (IC, runtime) feed Figure 1 and the
/// representativeness vectors instead. Two averaged metrics are excluded
/// from the clustering input (but kept in the representativeness vectors):
/// AIE load, which is near zero for 14 of the 18 units (Observation #5)
/// and would otherwise contribute a single-benchmark-dominated axis after
/// max-normalization, and storage-device busy, which is not among the
/// capture tool's counter categories (§IV-A lists CPU, GPU, AIE, memory
/// and temperature). The heavy-tailed MPKI metrics enter as `ln(1 + x)`.
pub const CLUSTERING_FEATURES: [&str; 11] = [
    "IPC",
    "Cache MPKI (log)",
    "Branch MPKI (log)",
    "CPU Load",
    "CPU Little Load",
    "CPU Mid Load",
    "CPU Big Load",
    "GPU Load",
    "% Shaders Busy",
    "% GPU Bus Busy",
    "Used Memory",
];

/// Every feature matrix derived from one study — the output artifact of
/// the featurize stage, content-addressed by the study digest it was
/// extracted from.
#[derive(Debug, Clone)]
pub struct FeatureSet {
    /// Digest of the study the matrices were extracted from.
    pub study_digest: u64,
    /// The raw Figure-1 matrix ([`fig1_matrix`]).
    pub fig1: Matrix,
    /// The raw clustering matrix ([`clustering_matrix_raw`]).
    pub clustering_raw: Matrix,
    /// The max-normalized clustering matrix ([`clustering_matrix`]).
    pub clustering: Matrix,
    /// The representativeness matrix ([`representativeness_matrix`]).
    pub representativeness: Matrix,
}

/// Run the featurize stage: extract every matrix in one pass.
pub fn featurize(study: &Characterization) -> Result<FeatureSet, AnalysisError> {
    Ok(FeatureSet {
        study_digest: study.digest(),
        fig1: fig1_matrix(study)?,
        clustering_raw: clustering_matrix_raw(study)?,
        clustering: clustering_matrix(study)?,
        representativeness: representativeness_matrix(study)?,
    })
}

/// Shared guard: a fully degraded study has no rows to build from.
fn require_profiles(study: &Characterization) -> Result<(), AnalysisError> {
    if study.profiles().is_empty() {
        return Err(AnalysisError::EmptyStudy);
    }
    Ok(())
}

/// The raw Figure-1 matrix: one row per unit, columns per
/// [`FIG1_METRICS`]. Fails with [`AnalysisError::EmptyStudy`] when no
/// unit produced a profile.
pub fn fig1_matrix(study: &Characterization) -> Result<Matrix, AnalysisError> {
    require_profiles(study)?;
    let rows: Vec<Vec<f64>> = study
        .profiles()
        .iter()
        .map(|p| {
            vec![
                p.metrics.instruction_count,
                p.metrics.ipc,
                p.metrics.cache_mpki,
                p.metrics.branch_mpki,
                p.metrics.runtime_seconds,
            ]
        })
        .collect();
    Matrix::from_rows(&rows)
}

/// The raw clustering matrix: one row per unit, columns per
/// [`CLUSTERING_FEATURES`].
pub fn clustering_matrix_raw(study: &Characterization) -> Result<Matrix, AnalysisError> {
    require_profiles(study)?;
    let rows: Vec<Vec<f64>> = study
        .profiles()
        .iter()
        .map(|p| {
            vec![
                p.metrics.ipc,
                (1.0 + p.metrics.cache_mpki).ln(),
                (1.0 + p.metrics.branch_mpki).ln(),
                p.metrics.cpu_load,
                p.metrics.cpu_little_load,
                p.metrics.cpu_mid_load,
                p.metrics.cpu_big_load,
                p.metrics.gpu_load,
                p.metrics.gpu_shaders_busy,
                p.metrics.gpu_bus_busy,
                p.metrics.memory_used_fraction,
            ]
        })
        .collect();
    Matrix::from_rows(&rows)
}

/// The max-normalized clustering matrix (each column scaled by its maximum
/// recorded value, as the paper's subsetting methodology prescribes).
pub fn clustering_matrix(study: &Characterization) -> Result<Matrix, AnalysisError> {
    Ok(normalize_columns(
        &clustering_matrix_raw(study)?,
        NormalizeMode::Max,
    ))
}

/// The max-normalized representativeness matrix used for the Yi-et-al.
/// subsetting evaluation: *all* performance metrics of each benchmark
/// (step 1 of the method), i.e. the clustering features plus AIE load,
/// storage busy and the run totals (IC, runtime).
pub fn representativeness_matrix(study: &Characterization) -> Result<Matrix, AnalysisError> {
    require_profiles(study)?;
    let rows: Vec<Vec<f64>> = study
        .profiles()
        .iter()
        .map(|p| {
            vec![
                p.metrics.instruction_count,
                p.metrics.runtime_seconds,
                p.metrics.ipc,
                (1.0 + p.metrics.cache_mpki).ln(),
                (1.0 + p.metrics.branch_mpki).ln(),
                p.metrics.cpu_load,
                p.metrics.cpu_little_load,
                p.metrics.cpu_mid_load,
                p.metrics.cpu_big_load,
                p.metrics.gpu_load,
                p.metrics.gpu_shaders_busy,
                p.metrics.gpu_bus_busy,
                p.metrics.aie_load,
                p.metrics.memory_used_fraction,
                p.metrics.storage_busy,
            ]
        })
        .collect();
    let raw = Matrix::from_rows(&rows)?;
    Ok(normalize_columns(&raw, NormalizeMode::Max))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DegradationReport;
    use mwc_soc::config::SocConfig;

    fn study() -> Characterization {
        Characterization::run(SocConfig::snapdragon_888(), 7, 1)
    }

    #[test]
    fn fig1_matrix_shape() {
        let m = fig1_matrix(&study()).expect("18 profiled units");
        assert_eq!(m.rows(), 18);
        assert_eq!(m.cols(), FIG1_METRICS.len());
    }

    #[test]
    fn clustering_matrix_is_normalized() {
        let m = clustering_matrix(&study()).expect("18 profiled units");
        assert_eq!(m.rows(), 18);
        assert_eq!(m.cols(), CLUSTERING_FEATURES.len());
        for c in 0..m.cols() {
            let col = m.col(c);
            let max = col.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert!(max <= 1.0 + 1e-12, "column {c} max {max}");
        }
    }

    #[test]
    fn representativeness_matrix_adds_totals() {
        let s = study();
        let m = representativeness_matrix(&s).expect("18 profiled units");
        assert_eq!(m.cols(), CLUSTERING_FEATURES.len() + 4);
        assert_eq!(m.rows(), 18);
    }

    #[test]
    fn empty_study_is_a_typed_error_not_a_panic() {
        let empty = Characterization {
            profiles: Vec::new(),
            report: DegradationReport {
                units_requested: 18,
                failed_units: Vec::new(),
            },
        };
        for result in [
            fig1_matrix(&empty),
            clustering_matrix_raw(&empty),
            clustering_matrix(&empty),
            representativeness_matrix(&empty),
        ] {
            assert!(matches!(result, Err(AnalysisError::EmptyStudy)));
        }
        assert!(matches!(featurize(&empty), Err(AnalysisError::EmptyStudy)));
    }

    #[test]
    fn featurize_bundles_every_matrix() {
        let s = study();
        let set = featurize(&s).expect("18 profiled units");
        assert_eq!(set.study_digest, s.digest());
        assert_eq!(set.fig1.digest(), fig1_matrix(&s).expect("fig1").digest());
        assert_eq!(
            set.clustering.digest(),
            clustering_matrix(&s).expect("clustering").digest()
        );
        assert_eq!(
            set.representativeness.digest(),
            representativeness_matrix(&s).expect("repr").digest()
        );
    }
}
