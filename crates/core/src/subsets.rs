//! The reduced benchmark sets of §VI-B and their evaluation.

use mwc_analysis::cluster::Clustering;
use mwc_analysis::error::AnalysisError;
use mwc_analysis::subset::{fastest_per_cluster, runtime_reduction, total_min_euclidean};

use crate::cache::StudyCache;
use crate::pipeline::Characterization;

/// The three reduced sets the paper proposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SubsetKind {
    /// One benchmark per cluster, chosen by shortest runtime.
    Naive,
    /// Antutu (all four segments — it only runs whole) + GFXBench Special
    /// (highest AIE load) + Geekbench 5 CPU (stresses all CPU clusters,
    /// shorter than Geekbench 6 CPU).
    Select,
    /// Select plus Geekbench 6 Compute, the benchmark with the highest
    /// average GPU load.
    SelectPlusGpu,
}

impl SubsetKind {
    /// All subsets, in the paper's order.
    pub const ALL: [SubsetKind; 3] = [
        SubsetKind::Naive,
        SubsetKind::Select,
        SubsetKind::SelectPlusGpu,
    ];

    /// Display name matching Table VI.
    pub fn name(self) -> &'static str {
        match self {
            SubsetKind::Naive => "Naive Set",
            SubsetKind::Select => "Select Set",
            SubsetKind::SelectPlusGpu => "Select + GPU Set",
        }
    }
}

/// Unit names of the Select subset, in the paper's presentation order
/// (Antutu first — it can only run whole).
pub const SELECT_MEMBERS: [&str; 6] = [
    "Antutu CPU",
    "Antutu GPU",
    "Antutu Mem",
    "Antutu UX",
    "GFXBench Special",
    "Geekbench 5 CPU",
];

/// Unit names of the Select + GPU subset.
pub const SELECT_PLUS_GPU_MEMBERS: [&str; 7] = [
    "Antutu CPU",
    "Antutu GPU",
    "Antutu Mem",
    "Antutu UX",
    "GFXBench Special",
    "Geekbench 5 CPU",
    "Geekbench 6 Compute",
];

/// A materialized subset: member indices into the study's unit order.
#[derive(Debug, Clone, PartialEq)]
pub struct Subset {
    /// Which of the paper's subsets this is.
    pub kind: SubsetKind,
    /// Member indices into `Characterization::profiles()`, in presentation
    /// order.
    pub indices: Vec<usize>,
}

impl Subset {
    /// Member unit names.
    pub fn names<'a>(&self, study: &'a Characterization) -> Vec<&'a str> {
        self.indices
            .iter()
            .map(|&i| study.profiles()[i].name.as_str())
            .collect()
    }

    /// Total running time of the subset in seconds.
    pub fn running_time(&self, study: &Characterization) -> f64 {
        self.indices
            .iter()
            .map(|&i| study.profiles()[i].metrics.runtime_seconds)
            .sum()
    }

    /// Percentage runtime reduction versus running every unit (Table VI).
    pub fn reduction_percent(&self, study: &Characterization) -> f64 {
        runtime_reduction(&study.runtimes(), &self.indices)
    }

    /// Total minimum Euclidean distance of the subset on the
    /// max-normalized representativeness matrix (Figure 7). Fails with
    /// [`AnalysisError::EmptyStudy`] on a fully degraded study.
    pub fn representativeness(&self, study: &Characterization) -> Result<f64, AnalysisError> {
        let features = StudyCache::global().features(study)?;
        Ok(total_min_euclidean(
            &features.representativeness,
            &self.indices,
        ))
    }
}

/// Resolve unit names to profile indices. Units absent from the study
/// (excluded by the degradation report of a faulty run) are skipped: the
/// subset degrades alongside the study instead of panicking.
fn indices_of(study: &Characterization, names: &[&str]) -> Vec<usize> {
    names
        .iter()
        .filter_map(|name| study.profiles().iter().position(|p| p.name == *name))
        .collect()
}

/// Build the Naive subset from a clustering: the fastest member of every
/// cluster, presented fastest-first as the paper introduces it.
pub fn naive_subset(study: &Characterization, clustering: &Clustering) -> Subset {
    let mut indices = fastest_per_cluster(clustering, &study.runtimes());
    indices.sort_by(|&a, &b| {
        study.profiles()[a]
            .metrics
            .runtime_seconds
            .total_cmp(&study.profiles()[b].metrics.runtime_seconds)
    });
    Subset {
        kind: SubsetKind::Naive,
        indices,
    }
}

/// The Select subset (fixed membership from §VI-B).
pub fn select_subset(study: &Characterization) -> Subset {
    Subset {
        kind: SubsetKind::Select,
        indices: indices_of(study, &SELECT_MEMBERS),
    }
}

/// The Select + GPU subset (fixed membership from §VI-B).
pub fn select_plus_gpu_subset(study: &Characterization) -> Subset {
    Subset {
        kind: SubsetKind::SelectPlusGpu,
        indices: indices_of(study, &SELECT_PLUS_GPU_MEMBERS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_soc::config::SocConfig;

    fn study() -> Characterization {
        Characterization::run(SocConfig::snapdragon_888(), 7, 1)
    }

    #[test]
    fn select_running_time_matches_table_6() {
        let s = study();
        let select = select_subset(&s);
        // Table VI: Select Set = 865.2 s (80.47% reduction).
        assert!((select.running_time(&s) - 865.2).abs() < 1.0);
        assert!((select.reduction_percent(&s) - 80.47).abs() < 0.2);
    }

    #[test]
    fn select_plus_gpu_matches_table_6() {
        let s = study();
        let sel = select_plus_gpu_subset(&s);
        // Table VI: Select + GPU Set = 1108.36 s (74.98% reduction).
        assert!((sel.running_time(&s) - 1108.36).abs() < 1.0);
        assert!((sel.reduction_percent(&s) - 74.98).abs() < 0.2);
        assert_eq!(sel.indices.len(), 7, "seven benchmarks (§VI-B)");
    }

    #[test]
    fn subsets_grow_monotonically() {
        let s = study();
        let select = select_subset(&s);
        let plus = select_plus_gpu_subset(&s);
        for idx in &select.indices {
            assert!(plus.indices.contains(idx));
        }
        // Adding a member can only improve (lower) representativeness.
        assert!(
            plus.representativeness(&s).expect("full study")
                <= select.representativeness(&s).expect("full study")
        );
    }

    #[test]
    fn naive_subset_from_ground_truth_clustering() {
        let s = study();
        // Ground-truth labels as a clustering.
        let labels: Vec<usize> = s.profiles().iter().map(|p| p.label as usize).collect();
        let clustering = Clustering::new(labels, 5).expect("18 labels, 5 clusters");
        let naive = naive_subset(&s, &clustering);
        let names = naive.names(&s);
        assert_eq!(names.len(), 5);
        for expected in [
            "PCMark Storage",
            "Geekbench 5 CPU",
            "GFXBench Special",
            "3DMark Wild Life",
            "Geekbench 5 Compute",
        ] {
            assert!(names.contains(&expected), "missing {expected}");
        }
        // Table VI: Naive Set = 401.7 s (90.93% reduction).
        assert!((naive.running_time(&s) - 401.7).abs() < 1.0);
        assert!((naive.reduction_percent(&s) - 90.93).abs() < 0.2);
    }

    #[test]
    fn subset_names_resolve() {
        let s = study();
        assert_eq!(select_subset(&s).names(&s).len(), 6);
        assert_eq!(SubsetKind::Naive.name(), "Naive Set");
        assert_eq!(SubsetKind::SelectPlusGpu.name(), "Select + GPU Set");
    }
}
