//! # mwc-core — the workload-characterization study
//!
//! The primary contribution of *Workload Characterization of Commercial
//! Mobile Benchmark Suites* (ISPASS 2024), reproduced end to end on the
//! simulated platform:
//!
//! * [`pipeline`] — run every characterization unit on the simulated
//!   Snapdragon-888 platform, three runs averaged, and collect profiles;
//! * [`features`] — the Figure-1 metric vectors and the clustering feature
//!   matrix;
//! * [`observations`] — the paper's nine numbered observations as
//!   checkable predicates over the profiles;
//! * [`tables`] — Tables III (metric correlations), V (load-level
//!   residency) and VI (subset running times);
//! * [`figures`] — the data series behind Figures 1–7;
//! * [`subsets`] — the Naive, Select and Select + GPU reduced benchmark
//!   sets and their representativeness evaluation;
//! * [`spec`] — the typed [`StudySpec`] driving the staged pipeline:
//!   seed, runs, platform, fault model (with per-unit overrides) and
//!   unit selection;
//! * [`cache`] — a persistent, content-addressed cache of study, per-unit
//!   stage and sweep results, so warm runs skip simulation entirely and a
//!   one-unit change re-simulates only that unit;
//! * [`exec`] — the fleet execution layer: the `Exec` trait with an
//!   in-process pool and a subprocess-sharding backend (`MWC_EXEC`),
//!   both bit-identical by contract;
//! * [`studydb`] — the append-only study database (`MWC_STUDY_DB`):
//!   every completed study persisted with spec, timings and capture
//!   health, enabling resumable sweeps and historical reports.
//!
//! ## Quickstart
//!
//! ```no_run
//! use mwc_core::pipeline::Characterization;
//!
//! // Run the full study (18 units × 3 runs) on the default platform.
//! let study = Characterization::run_default();
//! for profile in study.profiles() {
//!     println!("{}: IPC {:.2}", profile.name, profile.metrics.ipc);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod error;
pub mod exec;
pub mod features;
pub mod figures;
pub mod observations;
pub mod pipeline;
pub mod spec;
mod stages;
pub mod studydb;
pub mod subsets;
pub mod tables;
pub mod wire;

pub use cache::{CacheStats, StageKind, StageStats, StudyCache};
pub use error::PipelineError;
pub use exec::{Exec, LocalExec, SubprocessExec};
pub use features::FeatureSet;
pub use pipeline::{Characterization, DegradationReport, UnitProfile};
pub use spec::{StudySpec, UnitSelection};
pub use studydb::{StudyDb, StudyRecord};
pub use wire::{from_wire, to_wire, to_wire_with_threads, WireError};
