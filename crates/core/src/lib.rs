//! # mwc-core — the workload-characterization study
//!
//! The primary contribution of *Workload Characterization of Commercial
//! Mobile Benchmark Suites* (ISPASS 2024), reproduced end to end on the
//! simulated platform:
//!
//! * [`pipeline`] — run every characterization unit on the simulated
//!   Snapdragon-888 platform, three runs averaged, and collect profiles;
//! * [`features`] — the Figure-1 metric vectors and the clustering feature
//!   matrix;
//! * [`observations`] — the paper's nine numbered observations as
//!   checkable predicates over the profiles;
//! * [`tables`] — Tables III (metric correlations), V (load-level
//!   residency) and VI (subset running times);
//! * [`figures`] — the data series behind Figures 1–7;
//! * [`subsets`] — the Naive, Select and Select + GPU reduced benchmark
//!   sets and their representativeness evaluation;
//! * [`cache`] — a persistent, content-addressed cache of study and
//!   sweep results so warm runs skip simulation entirely.
//!
//! ## Quickstart
//!
//! ```no_run
//! use mwc_core::pipeline::Characterization;
//!
//! // Run the full study (18 units × 3 runs) on the default platform.
//! let study = Characterization::run_default();
//! for profile in study.profiles() {
//!     println!("{}: IPC {:.2}", profile.name, profile.metrics.ipc);
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod error;
pub mod features;
pub mod figures;
pub mod observations;
pub mod pipeline;
pub mod subsets;
pub mod tables;

pub use cache::{CacheStats, StudyCache};
pub use error::PipelineError;
pub use pipeline::{Characterization, DegradationReport, UnitProfile};
