//! The staged execution graph behind every study.
//!
//! A study is an explicit pipeline of typed stages:
//!
//! ```text
//! StudySpec ─▶ validate ─▶ per-unit { capture ─▶ derive } ─▶ collect
//!                               │                               │
//!                          unit artifacts                 Characterization
//!                       (content-addressed,                     │
//!                        keyed by unit_key)              featurize ─▶ analyze
//! ```
//!
//! [`execute`] runs the graph. When handed a [`StudyCache`], each unit's
//! capture+derive work is memoized as a content-addressed *unit artifact*
//! keyed by [`StudySpec::unit_key`] — so changing one unit's fault config
//! re-simulates exactly that unit, and the other artifacts are replayed
//! from cache. Failed captures are cached too (as their rendered error),
//! which keeps a warm degraded study bit-identical to its cold run.
//!
//! Without a cache the executor is the plain pipeline: bit-identical to
//! the pre-stage-graph implementation (the digest tests are the oracle).

use std::sync::Arc;

use mwc_profiler::capture::Profiler;
use mwc_soc::engine::Engine;
use mwc_workloads::registry::BenchmarkUnit;

use crate::cache::StudyCache;
use crate::error::PipelineError;
use crate::pipeline::{
    capture_stage, derive_stage, stage, Characterization, DegradationReport, FailedUnit,
    UnitProfile,
};
use crate::spec::StudySpec;

/// The cached outcome of one unit's capture+derive stages. Failures are
/// first-class artifacts: a warm replay of a degraded study must rebuild
/// the same [`DegradationReport`] without re-simulating.
#[derive(Debug, Clone)]
pub(crate) enum UnitArtifact {
    /// The unit produced a usable profile.
    Profiled(Arc<UnitProfile>),
    /// Every capture attempt failed; the rendered error.
    Failed(String),
}

/// Run the stage graph for `spec`. With `cache` set, per-unit artifacts
/// are consulted and stored; without it every stage computes.
pub(crate) fn execute(
    spec: &StudySpec,
    cache: Option<&StudyCache>,
) -> Result<Characterization, PipelineError> {
    let mut study_span = mwc_obs::span("pipeline.study");
    study_span.field("seed", spec.seed);
    study_span.field("runs", spec.runs);
    study_span.field("threads", spec.threads);
    mwc_obs::metrics::gauge_set("pipeline.threads", spec.threads as f64);

    let selected = stage("pipeline.validate", || {
        spec.validate()?;
        // Validate the platform once up front, so worker-side engine
        // construction below is infallible.
        Engine::new(spec.config.clone(), spec.seed)?;
        spec.selected()
    })?;
    study_span.field("units", selected.len());

    let results = stage("pipeline.capture", || {
        mwc_parallel::ordered_map_with(
            &selected,
            spec.threads,
            || {
                let engine = Engine::new(spec.config.clone(), spec.seed)
                    .expect("configuration validated above");
                Profiler::new(engine, spec.seed)
            },
            |profiler, (unit_index, unit), _| unit_task(profiler, *unit_index, unit, spec, cache),
        )
    });

    stage("pipeline.collect", || {
        let units_requested = selected.len();
        let mut profiles = Vec::with_capacity(units_requested);
        let mut failed_units = Vec::new();
        for ((_, unit), (artifact, computed)) in selected.iter().zip(results) {
            match artifact {
                UnitArtifact::Profiled(p) => {
                    // Capture-health counters describe work *done* this
                    // process; artifacts replayed from cache did none.
                    if computed {
                        p.health.record_metrics();
                    }
                    profiles.push((*p).clone());
                }
                UnitArtifact::Failed(error) => {
                    mwc_obs::metrics::counter_add("pipeline.failed_units", 1);
                    failed_units.push(FailedUnit {
                        name: unit.name.to_owned(),
                        error,
                    });
                }
            }
        }
        if profiles.is_empty() {
            return Err(PipelineError::StudyEmpty {
                requested: units_requested,
            });
        }
        mwc_obs::metrics::counter_add("pipeline.units_profiled", profiles.len() as u64);
        Ok(Characterization {
            profiles,
            report: DegradationReport {
                units_requested,
                failed_units,
            },
        })
    })
}

/// One unit through the capture → derive stages, artifact-cache first.
/// Returns the artifact plus whether it was computed here (vs. replayed).
fn unit_task(
    profiler: &mut Profiler,
    unit_index: usize,
    unit: &BenchmarkUnit,
    spec: &StudySpec,
    cache: Option<&StudyCache>,
) -> (UnitArtifact, bool) {
    let mut unit_span = mwc_obs::span("pipeline.unit");
    unit_span.field("name", unit.name);
    unit_span.field("index", unit_index);
    let key = spec.unit_key(unit_index, unit);
    if let Some(cache) = cache {
        if let Some(artifact) = cache.unit_artifact(key) {
            unit_span.field("cached", 1u64);
            return (artifact, false);
        }
    }
    let faults = spec.effective_faults(unit.name);
    let artifact = match capture_stage(profiler, unit, unit_index, spec.runs, faults) {
        Ok((maps, health)) => {
            UnitArtifact::Profiled(Arc::new(derive_stage(unit, &maps, health, faults)))
        }
        Err(e) => UnitArtifact::Failed(e.to_string()),
    };
    if let Some(cache) = cache {
        cache.store_unit_artifact(key, &artifact);
    }
    (artifact, true)
}
