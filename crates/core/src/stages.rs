//! The staged execution graph behind every study.
//!
//! A study is an explicit pipeline of typed stages:
//!
//! ```text
//! StudySpec ─▶ validate ─▶ per-unit { capture ─▶ derive } ─▶ collect
//!                               │                               │
//!                          unit artifacts                 Characterization
//!                       (content-addressed,                     │
//!                        keyed by unit_key)              featurize ─▶ analyze
//! ```
//!
//! [`execute`] runs the graph. The per-unit stage is fanned out through
//! the process-wide [`crate::exec::Exec`] backend — the in-process pool
//! by default, subprocess shards under `MWC_EXEC=subprocess` — and
//! every backend is bit-identical by contract. When handed a
//! [`StudyCache`], each unit's capture+derive work is memoized as a
//! content-addressed *unit artifact* keyed by [`StudySpec::unit_key`] —
//! so changing one unit's fault config re-simulates exactly that unit,
//! and the other artifacts are replayed from cache. Failed captures are
//! cached too (as their rendered error), which keeps a warm degraded
//! study bit-identical to its cold run.
//!
//! Completed studies are additionally persisted into the append-only
//! study database when `MWC_STUDY_DB` is set (see [`crate::studydb`]).
//!
//! Without a cache the executor is the plain pipeline: bit-identical to
//! the pre-stage-graph implementation (the digest tests are the
//! oracle).

use std::sync::Arc;
use std::time::Instant;

use mwc_profiler::capture::Profiler;
use mwc_soc::engine::Engine;
use mwc_workloads::registry::BenchmarkUnit;

use crate::cache::StudyCache;
use crate::error::PipelineError;
use crate::exec::{Exec, UnitArtifact, UnitOutcome};
use crate::pipeline::{
    capture_stage, derive_stage, stage, Characterization, DegradationReport, FailedUnit,
};
use crate::spec::StudySpec;

/// Run the stage graph for `spec` through the process-wide execution
/// backend. With `cache` set, per-unit artifacts are consulted and
/// stored; without it every stage computes.
pub(crate) fn execute(
    spec: &StudySpec,
    cache: Option<&StudyCache>,
) -> Result<Characterization, PipelineError> {
    execute_with(crate::exec::global(), spec, cache)
}

/// [`execute`] with an explicit execution backend.
pub(crate) fn execute_with(
    exec: &dyn Exec,
    spec: &StudySpec,
    cache: Option<&StudyCache>,
) -> Result<Characterization, PipelineError> {
    let started = Instant::now();
    let mut study_span = mwc_obs::span("pipeline.study");
    study_span.field("seed", spec.seed);
    study_span.field("runs", spec.runs);
    study_span.field("threads", spec.threads);
    mwc_obs::metrics::gauge_set("pipeline.threads", spec.threads as f64);

    let selected = stage("pipeline.validate", || {
        spec.validate()?;
        // Validate the platform once up front so the common path never
        // pays per-unit engine failures; a mismatch that still reaches
        // a shard worker degrades to per-unit Failed artifacts (see
        // `run_units_local`).
        Engine::new(spec.config.clone(), spec.seed)?;
        spec.selected()
    })?;
    study_span.field("units", selected.len());

    let outcomes = stage("pipeline.capture", || {
        exec.run_units(spec, &selected, cache)
    })?;

    let study = stage("pipeline.collect", || {
        let units_requested = selected.len();
        let mut profiles = Vec::with_capacity(units_requested);
        let mut failed_units = Vec::new();
        for ((_, unit), outcome) in selected.iter().zip(outcomes) {
            match outcome.artifact {
                UnitArtifact::Profiled(p) => {
                    // Capture-health counters describe work *done* this
                    // study run; artifacts replayed from cache did none.
                    if outcome.computed {
                        p.health.record_metrics();
                    }
                    profiles.push((*p).clone());
                }
                UnitArtifact::Failed(error) => {
                    mwc_obs::metrics::counter_add("pipeline.failed_units", 1);
                    failed_units.push(FailedUnit {
                        name: unit.name.to_owned(),
                        error,
                    });
                }
            }
        }
        if profiles.is_empty() {
            return Err(PipelineError::StudyEmpty {
                requested: units_requested,
            });
        }
        mwc_obs::metrics::counter_add("pipeline.units_profiled", profiles.len() as u64);
        Ok(Characterization {
            profiles,
            report: DegradationReport {
                units_requested,
                failed_units,
            },
        })
    })?;

    crate::studydb::record_completed(spec, &study, &exec.describe(), started.elapsed());
    Ok(study)
}

/// The in-process per-unit fan-out: the `mwc_parallel` worker pool,
/// artifact-cache first. This is both the [`crate::exec::LocalExec`]
/// backend and the compute path inside every subprocess worker.
pub(crate) fn run_units_local(
    spec: &StudySpec,
    selected: &[(usize, BenchmarkUnit)],
    cache: Option<&StudyCache>,
) -> Vec<UnitOutcome> {
    mwc_parallel::ordered_map_with(
        selected,
        spec.threads,
        || {
            // Engine construction is validated before the fan-out on
            // the coordinator path, but a shard worker builds engines
            // from a shipped spec: surface a mismatch as typed per-unit
            // failures, not a worker abort.
            Engine::new(spec.config.clone(), spec.seed)
                .map(|engine| Profiler::new(engine, spec.seed))
                .map_err(|e| PipelineError::from(e).to_string())
        },
        |worker, (unit_index, unit), _| match worker {
            Ok(profiler) => unit_task(profiler, *unit_index, unit, spec, cache),
            Err(error) => {
                mwc_obs::metrics::counter_add("pipeline.engine_failures", 1);
                // Environmental failure, not unit content: never cached.
                UnitOutcome {
                    artifact: UnitArtifact::Failed(error.clone()),
                    computed: true,
                }
            }
        },
    )
}

/// One unit through the capture → derive stages, artifact-cache first.
fn unit_task(
    profiler: &mut Profiler,
    unit_index: usize,
    unit: &BenchmarkUnit,
    spec: &StudySpec,
    cache: Option<&StudyCache>,
) -> UnitOutcome {
    let mut unit_span = mwc_obs::span("pipeline.unit");
    unit_span.field("name", unit.name);
    unit_span.field("index", unit_index);
    let key = spec.unit_key(unit_index, unit);
    if let Some(cache) = cache {
        if let Some(artifact) = cache.unit_artifact(key) {
            unit_span.field("cached", 1u64);
            return UnitOutcome {
                artifact,
                computed: false,
            };
        }
    }
    let faults = spec.effective_faults(unit.name);
    let artifact = match capture_stage(profiler, unit, unit_index, spec.runs, faults) {
        Ok((maps, health)) => {
            UnitArtifact::Profiled(Arc::new(derive_stage(unit, &maps, health, faults)))
        }
        Err(e) => UnitArtifact::Failed(e.to_string()),
    };
    if let Some(cache) = cache {
        cache.store_unit_artifact(key, &artifact);
    }
    UnitOutcome {
        artifact,
        computed: true,
    }
}
