//! # Fleet execution — the [`Exec`] trait and its backends
//!
//! `stages::execute` fans a study's per-unit capture+derive work out
//! through an [`Exec`] implementation:
//!
//! * [`LocalExec`] — the existing in-process worker pool
//!   (`mwc_parallel`); the default, and the baseline every other
//!   backend must match bit-for-bit.
//! * [`SubprocessExec`] — shards the unit list round-robin across N
//!   worker *processes*: self-`exec`s of the current binary, switched
//!   into worker mode by [`worker_guard`], speaking a length-prefixed
//!   framed protocol over stdin/stdout built on the [`crate::wire`]
//!   spec format and the cache's unit-artifact codec. Workers share
//!   the coordinator's on-disk [`StudyCache`] directory; the
//!   coordinator merges per-unit artifacts, respawns failed shards,
//!   and computes anything still missing in-process — a crashed
//!   worker can slow a study down but never change its digest.
//!
//! Bit-identity is inherited from the `(seed, unit, run)`
//! stream-seeding contract: a unit's simulation depends only on the
//! spec and the unit's registry index, never on which process, shard
//! or thread ran it, so any sharding of the unit list reproduces the
//! single-process study exactly (held by `tests/fleet_exec.rs` and the
//! `scripts/verify.sh` digest gate).
//!
//! ## Worker protocol
//!
//! Frames are `b"MWX1" | kind:u32 | len:u64 | payload | fnv64(payload)`
//! (little-endian). Kinds: `1` request — a [`crate::wire`] document
//! (with a `threads = N` line carrying the per-shard thread budget);
//! `2` response — per-unit `(unit_key, computed, artifact)` entries in
//! the cache's digest-verified unit codec; `3` error — a UTF-8
//! message. Readers *scan* for the magic, so harness banners around a
//! worker's stdout (e.g. libtest's, when the worker is a test binary)
//! are skipped, and every payload is checksummed.
//!
//! ## Environment
//!
//! | Variable | Effect |
//! |----------|--------|
//! | `MWC_EXEC` | `local` (default) or `subprocess` |
//! | `MWC_EXEC_SHARDS` | worker processes for `subprocess` (default: thread count, clamped to 2–8) |
//! | `MWC_EXEC_RETRIES` | respawn attempts per failed shard (default 1) |
//!
//! Counters: `exec.units_shipped` (artifacts merged from workers),
//! `exec.units_fallback` (computed in-process after a shard was given
//! up on), `exec.worker_failures`, `exec.shard_retries`,
//! `exec.shards_spawned`; gauge `exec.shards`.

use std::fmt::Debug;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, OnceLock};

use mwc_workloads::registry::{all_units, BenchmarkUnit};

use crate::cache::{decode_unit, encode_unit, StudyCache, CACHE_DIR_ENV, CACHE_MODE_ENV};
use crate::error::PipelineError;
use crate::pipeline::{Fnv1a, UnitProfile};
use crate::spec::StudySpec;
use crate::stages::run_units_local;
use crate::wire;

/// Selects the execution backend: `local` (default) or `subprocess`.
pub const EXEC_ENV: &str = "MWC_EXEC";

/// Worker-process count for the `subprocess` backend.
pub const EXEC_SHARDS_ENV: &str = "MWC_EXEC_SHARDS";

/// Respawn attempts per failed shard (default 1).
pub const EXEC_RETRIES_ENV: &str = "MWC_EXEC_RETRIES";

/// Set (to `1`) in children by the coordinator; [`worker_guard`] turns
/// the process into a protocol worker when it sees this.
pub const EXEC_WORKER_ENV: &str = "MWC_EXEC_WORKER";

/// Set in children to the shard's index; the worker labels all of its
/// spans with it (`mwc_obs::set_process_field`).
pub const EXEC_SHARD_ID_ENV: &str = "MWC_EXEC_SHARD_ID";

/// Test hook: a marker-file path. The first worker to serve a request
/// while the file does not exist creates it and aborts before replying,
/// simulating a mid-study worker crash exactly once. Used by the shard
/// fault-tolerance tests; ignored when unset.
pub const EXEC_TEST_ABORT_ENV: &str = "MWC_EXEC_TEST_ABORT";

/// The cached outcome of one unit's capture+derive stages. Failures are
/// first-class artifacts: a warm replay of a degraded study must
/// rebuild the same `DegradationReport` without re-simulating.
#[derive(Debug, Clone)]
pub enum UnitArtifact {
    /// The unit produced a usable profile.
    Profiled(Arc<UnitProfile>),
    /// Every capture attempt failed; the rendered error.
    Failed(String),
}

/// One unit's artifact plus whether it was computed in this study run
/// (vs. replayed from a cache layer) — the collect stage only records
/// capture-health metrics for work actually done.
#[derive(Debug, Clone)]
pub struct UnitOutcome {
    /// The capture+derive result.
    pub artifact: UnitArtifact,
    /// `true` if the artifact was computed (here or in a worker), not
    /// replayed from cache.
    pub computed: bool,
}

/// An execution backend for the per-unit stage of a study.
///
/// Implementations must preserve the determinism contract: for a given
/// spec, `run_units` returns the same artifacts (bit-for-bit) as
/// [`LocalExec`], in `selected` order.
pub trait Exec: Debug + Send + Sync {
    /// Human-readable backend description (e.g. `local`,
    /// `subprocess:4`).
    fn describe(&self) -> String;

    /// Worker-process count (1 for in-process backends).
    fn shards(&self) -> usize {
        1
    }

    /// Run capture+derive for every selected `(registry_index, unit)`
    /// pair, returning outcomes in the same order.
    fn run_units(
        &self,
        spec: &StudySpec,
        selected: &[(usize, BenchmarkUnit)],
        cache: Option<&StudyCache>,
    ) -> Result<Vec<UnitOutcome>, PipelineError>;
}

/// The in-process backend: the `mwc_parallel` worker pool, exactly as
/// before the fleet layer existed.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalExec;

impl Exec for LocalExec {
    fn describe(&self) -> String {
        "local".to_owned()
    }

    fn run_units(
        &self,
        spec: &StudySpec,
        selected: &[(usize, BenchmarkUnit)],
        cache: Option<&StudyCache>,
    ) -> Result<Vec<UnitOutcome>, PipelineError> {
        Ok(run_units_local(spec, selected, cache))
    }
}

/// The subprocess backend: shard the unit list across worker processes.
///
/// Shards are re-spawns of the current executable (`current_exe`), so
/// every binary that can coordinate must call [`worker_guard`] early in
/// `main` (the `mwc-bench` bins and `mwc-server` do). A child that
/// never reaches the guard produces no valid frames, which the
/// coordinator treats as a shard failure and absorbs via retry +
/// in-process fallback — degraded throughput, identical results.
#[derive(Debug, Clone)]
pub struct SubprocessExec {
    shards: usize,
    retries: usize,
    worker_args: Vec<String>,
}

impl SubprocessExec {
    /// A backend with `shards` worker processes and the default retry
    /// budget (1 respawn per failed shard).
    pub fn new(shards: usize) -> Self {
        SubprocessExec {
            shards: shards.max(1),
            retries: 1,
            worker_args: Vec::new(),
        }
    }

    /// Set the respawn budget per failed shard.
    pub fn with_retries(mut self, retries: usize) -> Self {
        self.retries = retries;
        self
    }

    /// Extra argv for the spawned worker. Needed when the current
    /// executable requires arguments to reach [`worker_guard`] — e.g. a
    /// libtest binary is launched as `<exe> <test-name> --exact
    /// --nocapture` so only the guard-hosting test runs.
    pub fn with_worker_args<S: Into<String>>(mut self, args: impl IntoIterator<Item = S>) -> Self {
        self.worker_args = args.into_iter().map(Into::into).collect();
        self
    }

    /// Spawn one worker and hand it its request; the closed stdin makes
    /// the worker exit after this single study.
    fn spawn_shard(
        &self,
        doc: &str,
        shard: usize,
        cache: Option<&StudyCache>,
    ) -> io::Result<Child> {
        let exe = std::env::current_exe()?;
        let mut cmd = Command::new(exe);
        cmd.args(&self.worker_args)
            .env(EXEC_WORKER_ENV, "1")
            // Workers never shard further, and shard-partial studies
            // must not be recorded as completed studies.
            .env(EXEC_ENV, "local")
            .env(EXEC_SHARD_ID_ENV, shard.to_string())
            .env_remove(crate::studydb::STUDY_DB_ENV)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        // Share the coordinator's on-disk artifact layer when it has
        // one; otherwise keep workers cache-less so a sharded run has
        // no side effects an in-process run would not have.
        match cache
            .filter(|c| c.stage_entries_enabled())
            .and_then(|c| c.dir())
        {
            Some(dir) => {
                cmd.env(CACHE_MODE_ENV, "on").env(CACHE_DIR_ENV, dir);
            }
            None => {
                cmd.env(CACHE_MODE_ENV, "off");
            }
        }
        let mut child = cmd.spawn()?;
        let mut stdin = child
            .stdin
            .take()
            .ok_or_else(|| io::Error::new(io::ErrorKind::BrokenPipe, "worker stdin unavailable"))?;
        write_frame(&mut stdin, KIND_REQ, doc.as_bytes())?;
        drop(stdin);
        mwc_obs::metrics::counter_add("exec.shards_spawned", 1);
        Ok(child)
    }

    /// Read one shard's response and reap the child. Any protocol or
    /// process irregularity is a shard failure (the coordinator retries
    /// or falls back; it never trusts a partial response).
    fn collect_shard(child: &mut Child) -> Result<Vec<(u64, bool, UnitArtifact)>, String> {
        let stdout = child
            .stdout
            .take()
            .ok_or_else(|| "worker stdout unavailable".to_owned())?;
        let mut reader = BufReader::new(stdout);
        let result = (|| {
            let frame = read_frame(&mut reader).map_err(|e| format!("read: {e}"))?;
            let (kind, payload) =
                frame.ok_or_else(|| "worker exited before replying".to_owned())?;
            match kind {
                KIND_RESP => {
                    decode_outcomes(&payload).ok_or_else(|| "malformed worker response".to_owned())
                }
                KIND_ERR => Err(format!(
                    "worker error: {}",
                    String::from_utf8_lossy(&payload)
                )),
                other => Err(format!("unexpected frame kind {other}")),
            }
        })();
        match &result {
            Ok(_) => {
                let _ = child.wait();
            }
            Err(_) => {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
        result
    }
}

impl Exec for SubprocessExec {
    fn describe(&self) -> String {
        format!("subprocess:{}", self.shards)
    }

    fn shards(&self) -> usize {
        self.shards
    }

    fn run_units(
        &self,
        spec: &StudySpec,
        selected: &[(usize, BenchmarkUnit)],
        cache: Option<&StudyCache>,
    ) -> Result<Vec<UnitOutcome>, PipelineError> {
        mwc_obs::metrics::gauge_set("exec.shards", self.shards as f64);
        if self.shards < 2 || selected.len() < 2 {
            return LocalExec.run_units(spec, selected, cache);
        }
        // A config the wire format cannot name cannot be shipped to a
        // worker; run it in-process instead of failing the study.
        if wire::to_wire(spec).is_err() {
            mwc_obs::metrics::counter_add("exec.fallback_runs", 1);
            return LocalExec.run_units(spec, selected, cache);
        }

        let shards = mwc_parallel::round_robin_shards(selected.len(), self.shards);
        let worker_threads = (spec.threads / shards.len()).max(1);
        let keys: Vec<u64> = selected
            .iter()
            .map(|(index, unit)| spec.unit_key(*index, unit))
            .collect();
        let mut slots: Vec<Option<UnitOutcome>> = vec![None; selected.len()];

        // Spawn every shard (request written, stdin closed) before
        // collecting any, so all workers run concurrently.
        let mut running: Vec<(usize, Vec<usize>, String, io::Result<Child>)> = Vec::new();
        for (shard, indices) in shards.into_iter().enumerate() {
            let names = indices.iter().map(|&i| selected[i].1.name);
            let sub = spec.clone().with_units(names).with_threads(worker_threads);
            let doc = match wire::to_wire_with_threads(&sub) {
                Ok(doc) => doc,
                // Unreachable (preset checked above), but degrade to
                // in-process rather than dropping the shard.
                Err(_) => {
                    running.push((
                        shard,
                        indices,
                        String::new(),
                        Err(io::Error::other("unrepresentable sub-spec")),
                    ));
                    continue;
                }
            };
            let child = self.spawn_shard(&doc, shard, cache);
            running.push((shard, indices, doc, child));
        }

        for (shard, indices, doc, first) in running {
            let mut span = mwc_obs::span("exec.shard");
            span.field("shard", shard as u64);
            span.field("units", indices.len());
            let mut child_slot = first;
            let mut attempt = 0usize;
            let merged = loop {
                let outcome = match child_slot {
                    Ok(mut child) => Self::collect_shard(&mut child),
                    Err(e) => Err(format!("spawn: {e}")),
                };
                match outcome {
                    Ok(units) => break Some(units),
                    Err(err) => {
                        mwc_obs::metrics::counter_add("exec.worker_failures", 1);
                        mwc_obs::event_with(
                            "exec.worker_failure",
                            vec![
                                ("shard".to_owned(), mwc_obs::Value::UInt(shard as u64)),
                                ("error".to_owned(), mwc_obs::Value::Str(err)),
                            ],
                        );
                        if attempt >= self.retries || doc.is_empty() {
                            break None;
                        }
                        attempt += 1;
                        mwc_obs::metrics::counter_add("exec.shard_retries", 1);
                        child_slot = self.spawn_shard(&doc, shard, cache);
                    }
                }
            };
            span.field("attempts", (attempt + 1) as u64);
            let Some(units) = merged else { continue };
            for (key, computed, artifact) in units {
                // Merge by content key: robust to any ordering the
                // worker replies in, and a corrupted key simply leaves
                // its slot for the in-process fallback below.
                if let Some(slot) = keys.iter().position(|&k| k == key) {
                    if slots[slot].is_none() {
                        mwc_obs::metrics::counter_add("exec.units_shipped", 1);
                        if computed {
                            if let Some(cache) = cache {
                                cache.store_unit_artifact(key, &artifact);
                            }
                        }
                        slots[slot] = Some(UnitOutcome { artifact, computed });
                    }
                }
            }
        }

        // Anything a failed shard left behind is computed here — slower,
        // never different.
        let missing: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].is_none()).collect();
        if !missing.is_empty() {
            mwc_obs::metrics::counter_add("exec.units_fallback", missing.len() as u64);
            let registry: Vec<usize> = missing.iter().map(|&i| selected[i].0).collect();
            let subset: Vec<(usize, BenchmarkUnit)> = all_units()
                .into_iter()
                .enumerate()
                .filter(|(index, _)| registry.contains(index))
                .collect();
            let outcomes = run_units_local(spec, &subset, cache);
            for (slot, outcome) in missing.into_iter().zip(outcomes) {
                slots[slot] = Some(outcome);
            }
        }

        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("every slot filled by shard merge or fallback"))
            .collect())
    }
}

/// Build the backend selected by `MWC_EXEC` / `MWC_EXEC_SHARDS` /
/// `MWC_EXEC_RETRIES`.
pub fn from_env() -> Box<dyn Exec> {
    match std::env::var(EXEC_ENV).ok().as_deref() {
        Some("subprocess") => {
            let shards = std::env::var(EXEC_SHARDS_ENV)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| mwc_parallel::configured_threads().clamp(2, 8));
            let retries = std::env::var(EXEC_RETRIES_ENV)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            Box::new(SubprocessExec::new(shards).with_retries(retries))
        }
        _ => Box::new(LocalExec),
    }
}

/// The process-wide backend, built from the environment on first use
/// (like [`StudyCache::global`], later env changes are not observed).
pub fn global() -> &'static dyn Exec {
    static GLOBAL: OnceLock<Box<dyn Exec>> = OnceLock::new();
    GLOBAL.get_or_init(from_env).as_ref()
}

/// Description of the configured global backend (e.g. `local`,
/// `subprocess:4`).
pub fn configured_description() -> String {
    global().describe()
}

/// Record the configured execution layer into the metrics registry
/// (gauges `exec.shards` and `studydb.enabled`) and return its
/// description — called by servers at boot so `/metrics` names the
/// fleet configuration before any study runs.
pub fn announce() -> String {
    let exec = global();
    mwc_obs::metrics::gauge_set("exec.shards", exec.shards() as f64);
    let db = if crate::studydb::global().is_some() {
        1.0
    } else {
        0.0
    };
    mwc_obs::metrics::gauge_set("studydb.enabled", db);
    exec.describe()
}

/// Run the full study pipeline (validate → units via `exec` → collect)
/// with an explicit backend. [`crate::Characterization::try_run_spec`]
/// and the cache use the [`global`] backend; this entry point is for
/// callers — tests, mostly — that need to pin one.
pub fn run_study(
    exec: &dyn Exec,
    spec: &StudySpec,
    cache: Option<&StudyCache>,
) -> Result<crate::pipeline::Characterization, PipelineError> {
    crate::stages::execute_with(exec, spec, cache)
}

/// If this process was spawned as a fleet worker (`MWC_EXEC_WORKER=1`),
/// serve the stdin/stdout protocol and exit; otherwise return
/// immediately. Every binary that can act as a coordinator calls this
/// first thing in `main`.
pub fn worker_guard() {
    if std::env::var(EXEC_WORKER_ENV).ok().as_deref() != Some("1") {
        return;
    }
    if let Ok(shard) = std::env::var(EXEC_SHARD_ID_ENV) {
        mwc_obs::set_process_field("shard", shard);
    }
    let stdin = io::stdin();
    let stdout = io::stdout();
    let code = worker_loop(&mut stdin.lock(), &mut stdout.lock());
    std::process::exit(code);
}

/// The worker side of the protocol: serve requests from `r` until EOF,
/// writing one response (or error) frame per request to `w`. Returns
/// the process exit code. Public for the protocol round-trip tests;
/// [`worker_guard`] is the production entry point.
pub fn worker_loop(r: &mut impl BufRead, w: &mut impl Write) -> i32 {
    loop {
        let (kind, payload) = match read_frame(r) {
            Ok(Some(frame)) => frame,
            Ok(None) => return 0,
            Err(_) => return 2,
        };
        if kind != KIND_REQ {
            let _ = write_frame(w, KIND_ERR, b"unexpected frame kind");
            return 2;
        }
        match handle_request(&payload) {
            Ok(resp) => {
                if write_frame(w, KIND_RESP, &resp).is_err() {
                    return 2;
                }
            }
            Err(msg) => {
                let _ = write_frame(w, KIND_ERR, msg.as_bytes());
            }
        }
    }
}

/// Serve one request payload: parse + validate the spec, run its units
/// in-process, encode the response payload.
fn handle_request(payload: &[u8]) -> Result<Vec<u8>, String> {
    let text = std::str::from_utf8(payload).map_err(|_| "request is not UTF-8".to_owned())?;
    let spec = wire::from_wire(text).map_err(|e| e.to_string())?;
    spec.validate().map_err(|e| e.to_string())?;
    let selected = spec.selected().map_err(|e| e.to_string())?;
    abort_once_if_requested();
    let cache = StudyCache::global();
    let cache = cache.is_enabled().then_some(cache);
    // No engine pre-validation here: a config/engine mismatch inside a
    // shard surfaces as per-unit `Failed` artifacts (typed, mergeable)
    // rather than a worker abort.
    let outcomes = run_units_local(&spec, &selected, cache);
    Ok(encode_outcomes(&spec, &selected, &outcomes))
}

/// See [`EXEC_TEST_ABORT_ENV`].
fn abort_once_if_requested() {
    if let Ok(path) = std::env::var(EXEC_TEST_ABORT_ENV) {
        if !path.is_empty() && !std::path::Path::new(&path).exists() {
            let _ = std::fs::write(&path, b"aborted");
            std::process::exit(3);
        }
    }
}

// ---------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------

const FRAME_MAGIC: &[u8; 4] = b"MWX1";
const KIND_REQ: u32 = 1;
const KIND_RESP: u32 = 2;
const KIND_ERR: u32 = 3;
/// Upper bound on a frame payload; anything larger is treated as stream
/// corruption rather than an allocation request.
const MAX_FRAME: u64 = 1 << 30;

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write_bytes(bytes);
    h.finish()
}

fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn write_frame(w: &mut impl Write, kind: u32, payload: &[u8]) -> io::Result<()> {
    w.write_all(FRAME_MAGIC)?;
    w.write_all(&kind.to_le_bytes())?;
    w.write_all(&(payload.len() as u64).to_le_bytes())?;
    w.write_all(payload)?;
    w.write_all(&fnv64(payload).to_le_bytes())?;
    w.flush()
}

/// Read the next frame, scanning past any non-frame bytes (harness
/// banners, partial garbage) until the magic is found. `Ok(None)` on
/// clean EOF before a magic.
fn read_frame(r: &mut impl Read) -> io::Result<Option<(u32, Vec<u8>)>> {
    let mut matched = 0usize;
    loop {
        let mut byte = [0u8; 1];
        match r.read(&mut byte) {
            Ok(0) => return Ok(None),
            Ok(_) => {}
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
        if byte[0] == FRAME_MAGIC[matched] {
            matched += 1;
            if matched == FRAME_MAGIC.len() {
                break;
            }
        } else {
            matched = usize::from(byte[0] == FRAME_MAGIC[0]);
        }
    }
    let mut head = [0u8; 12];
    r.read_exact(&mut head)?;
    let kind = le_u32(&head[0..4]);
    let len = le_u64(&head[4..12]);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame payload too large",
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let mut sum = [0u8; 8];
    r.read_exact(&mut sum)?;
    if le_u64(&sum) != fnv64(&payload) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame checksum mismatch",
        ));
    }
    Ok(Some((kind, payload)))
}

/// Response payload: `count:u32`, then per unit `key:u64 | computed:u8
/// | len:u64 | encode_unit bytes` (the cache codec verifies key, stored
/// digest and checksum on decode).
fn encode_outcomes(
    spec: &StudySpec,
    selected: &[(usize, BenchmarkUnit)],
    outcomes: &[UnitOutcome],
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(outcomes.len() as u32).to_le_bytes());
    for ((index, unit), outcome) in selected.iter().zip(outcomes) {
        let key = spec.unit_key(*index, unit);
        let bytes = encode_unit(key, &outcome.artifact);
        out.extend_from_slice(&key.to_le_bytes());
        out.push(u8::from(outcome.computed));
        out.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        out.extend_from_slice(&bytes);
    }
    out
}

fn decode_outcomes(payload: &[u8]) -> Option<Vec<(u64, bool, UnitArtifact)>> {
    let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
        let slice = payload.get(*at..*at + n)?;
        *at += n;
        Some(slice)
    };
    let mut at = 0usize;
    let count = le_u32(take(&mut at, 4)?) as usize;
    let mut out = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let key = le_u64(take(&mut at, 8)?);
        let computed = match take(&mut at, 1)?[0] {
            0 => false,
            1 => true,
            _ => return None,
        };
        let len = le_u64(take(&mut at, 8)?);
        if len > MAX_FRAME {
            return None;
        }
        let bytes = take(&mut at, len as usize)?;
        let artifact = decode_unit(key, bytes)?;
        out.push((key, computed, artifact));
    }
    (at == payload.len()).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwc_soc::config::SocConfig;

    fn tiny_spec() -> StudySpec {
        StudySpec::new(SocConfig::snapdragon_888(), 77, 1).with_units(["Aitutu", "Antutu CPU"])
    }

    #[test]
    fn frames_round_trip_and_skip_leading_garbage() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"running 1 test\nMWX-not-quite MW");
        write_frame(&mut buf, KIND_REQ, b"hello frame").unwrap();
        let mut cursor = io::Cursor::new(buf);
        let (kind, payload) = read_frame(&mut cursor).unwrap().unwrap();
        assert_eq!(kind, KIND_REQ);
        assert_eq!(payload, b"hello frame");
        assert!(read_frame(&mut cursor).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn corrupt_frame_checksum_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, KIND_RESP, b"payload bytes").unwrap();
        let flip = buf.len() - 12; // inside the payload
        buf[flip] ^= 0x40;
        let err = read_frame(&mut io::Cursor::new(buf)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn worker_loop_serves_a_request_in_process() {
        let spec = tiny_spec();
        let doc = wire::to_wire_with_threads(&spec).unwrap();
        let mut request = Vec::new();
        write_frame(&mut request, KIND_REQ, doc.as_bytes()).unwrap();
        let mut response = Vec::new();
        let code = worker_loop(&mut io::Cursor::new(request), &mut response);
        assert_eq!(code, 0);
        let (kind, payload) = read_frame(&mut io::Cursor::new(response)).unwrap().unwrap();
        assert_eq!(kind, KIND_RESP);
        let outcomes = decode_outcomes(&payload).expect("decodable response");
        assert_eq!(outcomes.len(), 2);
        let selected = spec.selected().unwrap();
        for ((index, unit), (key, _, artifact)) in selected.iter().zip(&outcomes) {
            assert_eq!(*key, spec.unit_key(*index, unit));
            assert!(matches!(artifact, UnitArtifact::Profiled(_)));
        }
    }

    #[test]
    fn worker_loop_reports_bad_specs_as_error_frames() {
        let mut request = Vec::new();
        write_frame(&mut request, KIND_REQ, b"not a wire document").unwrap();
        let mut response = Vec::new();
        let code = worker_loop(&mut io::Cursor::new(request), &mut response);
        assert_eq!(code, 0, "a bad request is not a worker crash");
        let (kind, payload) = read_frame(&mut io::Cursor::new(response)).unwrap().unwrap();
        assert_eq!(kind, KIND_ERR);
        assert!(!payload.is_empty());
    }

    #[test]
    fn subprocess_with_one_shard_matches_local_in_process() {
        // shards < 2 short-circuits to LocalExec — no child processes
        // are involved, so this is safe as an in-crate unit test.
        let spec = tiny_spec();
        let selected = spec.selected().unwrap();
        let local = LocalExec.run_units(&spec, &selected, None).unwrap();
        let sub = SubprocessExec::new(1)
            .run_units(&spec, &selected, None)
            .unwrap();
        assert_eq!(local.len(), sub.len());
        for (a, b) in local.iter().zip(&sub) {
            match (&a.artifact, &b.artifact) {
                (UnitArtifact::Profiled(x), UnitArtifact::Profiled(y)) => {
                    assert_eq!(x.digest(), y.digest());
                }
                other => panic!("expected profiled artifacts, got {other:?}"),
            }
        }
    }

    #[test]
    fn engine_mismatch_inside_a_shard_fails_units_not_the_worker() {
        // An invalid platform reaching a worker must surface as typed
        // per-unit failures (mergeable artifacts), not a process abort.
        let mut config = SocConfig::snapdragon_888();
        config.clusters.clear();
        let spec = StudySpec::new(config, 7, 1).with_units(["Aitutu"]);
        let selected = spec.selected().unwrap();
        let outcomes = run_units_local(&spec, &selected, None);
        assert_eq!(outcomes.len(), 1);
        match &outcomes[0].artifact {
            UnitArtifact::Failed(msg) => {
                assert!(msg.contains("platform error"), "typed rendering: {msg}");
            }
            other => panic!("expected a failed artifact, got {other:?}"),
        }
        assert!(outcomes[0].computed);
    }
}
