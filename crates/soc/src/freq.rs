//! Dynamic voltage and frequency scaling (DVFS).
//!
//! Each cluster (and the GPU/AIE) owns an operating-performance-point (OPP)
//! table and a `schedutil`-style governor: the target frequency is
//! proportional to utilization with 25% headroom, snapped up to the next
//! OPP, with bounded per-tick ramping to model governor latency.
//!
//! CPU Load in the paper is *frequency × utilization* precisely because
//! high utilization at a low frequency is not high load (§V-B); this module
//! is what makes that distinction meaningful in the simulator.

/// An operating-performance-point table: the discrete frequencies (MHz) a
/// domain can run at, ascending.
#[derive(Debug, Clone, PartialEq)]
pub struct OppTable {
    points: Vec<f64>,
}

impl OppTable {
    /// Build a table with `steps` evenly spaced OPPs covering
    /// `[min_mhz, max_mhz]`. `steps` is clamped to at least 2.
    pub fn linear(min_mhz: f64, max_mhz: f64, steps: usize) -> Self {
        let steps = steps.max(2);
        let span = max_mhz - min_mhz;
        let points = (0..steps)
            .map(|i| min_mhz + span * (i as f64) / ((steps - 1) as f64))
            .collect();
        OppTable { points }
    }

    /// The discrete points, ascending.
    pub fn points(&self) -> &[f64] {
        &self.points
    }

    /// Lowest OPP.
    pub fn min(&self) -> f64 {
        self.points[0]
    }

    /// Highest OPP. [`OppTable::linear`] guarantees at least two points,
    /// so the fallback is unreachable; it exists to keep this panic-free.
    pub fn max(&self) -> f64 {
        self.points.last().copied().unwrap_or(0.0)
    }

    /// Snap a requested frequency up to the next available OPP (clamped to
    /// the table range).
    pub fn snap_up(&self, freq_mhz: f64) -> f64 {
        for &p in &self.points {
            if p >= freq_mhz {
                return p;
            }
        }
        self.max()
    }
}

/// Frequency-scaling policy: which Linux cpufreq governor the platform
/// runs. The paper's platform uses the stock (schedutil) governor; the
/// alternatives support design-space ablations (see the `ablation` binary
/// of `mwc-bench`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GovernorPolicy {
    /// Track utilization with 25% headroom and smoothed ramping (default).
    #[default]
    Schedutil,
    /// Pin the domain at its maximum OPP.
    Performance,
    /// Pin the domain at its minimum OPP.
    Powersave,
    /// Like schedutil but with a slow ramp (half the gap per tick is left
    /// unclosed twice as long) — a `conservative`-style governor.
    Conservative,
}

impl GovernorPolicy {
    /// Human-readable name matching the Linux cpufreq governors.
    pub fn name(self) -> &'static str {
        match self {
            GovernorPolicy::Schedutil => "schedutil",
            GovernorPolicy::Performance => "performance",
            GovernorPolicy::Powersave => "powersave",
            GovernorPolicy::Conservative => "conservative",
        }
    }
}

/// A frequency governor over an OPP table with ramp smoothing.
#[derive(Debug, Clone, PartialEq)]
pub struct Governor {
    opps: OppTable,
    current_mhz: f64,
    /// Fraction of the remaining frequency gap closed per tick.
    ramp: f64,
    policy: GovernorPolicy,
}

/// Headroom factor used by `schedutil`: `target = 1.25 · util · max`.
const HEADROOM: f64 = 1.25;

impl Governor {
    /// Create a schedutil governor over the given OPP table, starting at
    /// the lowest OPP.
    pub fn new(opps: OppTable) -> Self {
        Governor::with_policy(opps, GovernorPolicy::Schedutil)
    }

    /// Create a governor with an explicit policy.
    pub fn with_policy(opps: OppTable, policy: GovernorPolicy) -> Self {
        let current_mhz = match policy {
            GovernorPolicy::Performance => opps.max(),
            _ => opps.min(),
        };
        let ramp = match policy {
            GovernorPolicy::Conservative => 0.33,
            _ => 0.65,
        };
        Governor {
            opps,
            current_mhz,
            ramp,
            policy,
        }
    }

    /// Convenience constructor: linear 8-point OPP table over the range.
    pub fn for_range(min_mhz: f64, max_mhz: f64) -> Self {
        Governor::new(OppTable::linear(min_mhz, max_mhz, 8))
    }

    /// The active policy.
    pub fn policy(&self) -> GovernorPolicy {
        self.policy
    }

    /// Replace the policy (takes effect from the next tick; frequency is
    /// re-pinned immediately for the fixed policies).
    pub fn set_policy(&mut self, policy: GovernorPolicy) {
        self.policy = policy;
        self.ramp = match policy {
            GovernorPolicy::Conservative => 0.33,
            _ => 0.65,
        };
        match policy {
            GovernorPolicy::Performance => self.current_mhz = self.opps.max(),
            GovernorPolicy::Powersave => self.current_mhz = self.opps.min(),
            _ => {}
        }
    }

    /// Current operating frequency in MHz.
    pub fn frequency_mhz(&self) -> f64 {
        self.current_mhz
    }

    /// The frequency one [`Governor::tick`] at the given utilization would
    /// move to, without mutating any state. `tick` is defined in terms of
    /// this, so the prediction is exact to the bit — which is what lets
    /// the event engine treat `next_frequency(u) == current_mhz` as proof
    /// that ticking the governor would be a no-op.
    pub fn next_frequency(&self, utilization: f64) -> f64 {
        match self.policy {
            GovernorPolicy::Performance => return self.opps.max(),
            GovernorPolicy::Powersave => return self.opps.min(),
            GovernorPolicy::Schedutil | GovernorPolicy::Conservative => {}
        }
        let util = utilization.clamp(0.0, 1.0);
        let raw_target =
            (HEADROOM * util * self.opps.max()).clamp(self.opps.min(), self.opps.max());
        let target = self.opps.snap_up(raw_target);
        // Governors react within a few scheduling periods; close most of
        // the gap each tick rather than jumping instantly.
        self.current_mhz + (target - self.current_mhz) * self.ramp
    }

    /// Whether the governor has reached its fixpoint for the given
    /// utilization: ticking it would reproduce the current frequency bit
    /// for bit, so the tick can be skipped entirely.
    pub fn is_settled_at(&self, utilization: f64) -> bool {
        self.next_frequency(utilization) == self.current_mhz
    }

    /// Advance one tick with the observed utilization in `[0, 1]`; returns
    /// the new operating frequency in MHz.
    pub fn tick(&mut self, utilization: f64) -> f64 {
        self.current_mhz = self.next_frequency(utilization);
        self.current_mhz
    }

    /// Reset to the policy's idle frequency (e.g. between benchmark runs).
    pub fn reset(&mut self) {
        self.current_mhz = match self.policy {
            GovernorPolicy::Performance => self.opps.max(),
            _ => self.opps.min(),
        };
    }

    /// The governor's OPP table.
    pub fn opps(&self) -> &OppTable {
        &self.opps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_table_covers_range() {
        let t = OppTable::linear(300.0, 3000.0, 8);
        assert_eq!(t.points().len(), 8);
        assert_eq!(t.min(), 300.0);
        assert_eq!(t.max(), 3000.0);
    }

    #[test]
    fn snap_up_picks_next_point() {
        let t = OppTable::linear(1000.0, 2000.0, 3); // 1000, 1500, 2000
        assert_eq!(t.snap_up(900.0), 1000.0);
        assert_eq!(t.snap_up(1000.0), 1000.0);
        assert_eq!(t.snap_up(1001.0), 1500.0);
        assert_eq!(t.snap_up(1700.0), 2000.0);
        assert_eq!(t.snap_up(9999.0), 2000.0);
    }

    #[test]
    fn steps_clamped_to_two() {
        let t = OppTable::linear(500.0, 1000.0, 0);
        assert_eq!(t.points().len(), 2);
    }

    #[test]
    fn governor_starts_low() {
        let g = Governor::for_range(300.0, 1800.0);
        assert_eq!(g.frequency_mhz(), 300.0);
    }

    #[test]
    fn full_load_converges_to_max() {
        let mut g = Governor::for_range(300.0, 1800.0);
        for _ in 0..50 {
            g.tick(1.0);
        }
        assert!((g.frequency_mhz() - 1800.0).abs() < 1.0);
    }

    #[test]
    fn idle_converges_to_min() {
        let mut g = Governor::for_range(300.0, 1800.0);
        for _ in 0..50 {
            g.tick(1.0);
        }
        for _ in 0..80 {
            g.tick(0.0);
        }
        assert!((g.frequency_mhz() - 300.0).abs() < 1.0);
    }

    #[test]
    fn moderate_load_runs_mid_table() {
        let mut g = Governor::for_range(300.0, 3000.0);
        for _ in 0..60 {
            g.tick(0.5);
        }
        let f = g.frequency_mhz();
        // 1.25 * 0.5 * 3000 = 1875, snapped up within the table.
        assert!(f > 1500.0 && f < 2500.0, "got {f}");
    }

    #[test]
    fn ramping_is_gradual() {
        let mut g = Governor::for_range(300.0, 3000.0);
        let f1 = g.tick(1.0);
        assert!(f1 < 3000.0, "first tick must not jump straight to max");
        let f2 = g.tick(1.0);
        assert!(f2 > f1);
    }

    #[test]
    fn reset_returns_to_min() {
        let mut g = Governor::for_range(300.0, 3000.0);
        for _ in 0..30 {
            g.tick(1.0);
        }
        g.reset();
        assert_eq!(g.frequency_mhz(), 300.0);
    }

    #[test]
    fn performance_policy_pins_max() {
        let mut g = Governor::with_policy(
            OppTable::linear(300.0, 3000.0, 8),
            GovernorPolicy::Performance,
        );
        assert_eq!(g.tick(0.0), 3000.0);
        assert_eq!(g.tick(1.0), 3000.0);
        g.reset();
        assert_eq!(g.frequency_mhz(), 3000.0);
    }

    #[test]
    fn powersave_policy_pins_min() {
        let mut g = Governor::with_policy(
            OppTable::linear(300.0, 3000.0, 8),
            GovernorPolicy::Powersave,
        );
        assert_eq!(g.tick(1.0), 300.0);
    }

    #[test]
    fn conservative_ramps_slower_than_schedutil() {
        let opps = OppTable::linear(300.0, 3000.0, 8);
        let mut fast = Governor::with_policy(opps.clone(), GovernorPolicy::Schedutil);
        let mut slow = Governor::with_policy(opps, GovernorPolicy::Conservative);
        for _ in 0..3 {
            fast.tick(1.0);
            slow.tick(1.0);
        }
        assert!(fast.frequency_mhz() > slow.frequency_mhz());
    }

    #[test]
    fn set_policy_repins_fixed_policies() {
        let mut g = Governor::for_range(300.0, 3000.0);
        g.set_policy(GovernorPolicy::Performance);
        assert_eq!(g.frequency_mhz(), 3000.0);
        assert_eq!(g.policy(), GovernorPolicy::Performance);
        assert_eq!(GovernorPolicy::Performance.name(), "performance");
    }

    #[test]
    fn next_frequency_predicts_tick_exactly() {
        let mut g = Governor::for_range(300.0, 3000.0);
        for (i, util) in [0.9, 0.9, 0.4, 0.0, 0.0, 0.7, 1.0, 0.2].iter().enumerate() {
            let predicted = g.next_frequency(*util);
            let actual = g.tick(*util);
            assert_eq!(
                predicted.to_bits(),
                actual.to_bits(),
                "prediction diverged at step {i}"
            );
        }
    }

    #[test]
    fn governor_settles_to_an_exact_fixpoint_at_idle() {
        let mut g = Governor::for_range(300.0, 3000.0);
        for _ in 0..30 {
            g.tick(1.0);
        }
        assert!(!g.is_settled_at(0.0), "still ramping down");
        for _ in 0..200 {
            g.tick(0.0);
        }
        assert!(g.is_settled_at(0.0), "idle ramp must reach a fixpoint");
        let before = g.frequency_mhz();
        assert_eq!(g.tick(0.0).to_bits(), before.to_bits());
    }

    #[test]
    fn fixed_policies_are_always_settled() {
        let opps = OppTable::linear(300.0, 3000.0, 8);
        let g = Governor::with_policy(opps.clone(), GovernorPolicy::Performance);
        assert!(g.is_settled_at(0.0) && g.is_settled_at(1.0));
        let g = Governor::with_policy(opps, GovernorPolicy::Powersave);
        assert!(g.is_settled_at(0.0) && g.is_settled_at(1.0));
    }

    #[test]
    fn freshly_reset_governor_is_settled_at_idle() {
        let g = Governor::for_range(300.0, 3000.0);
        // At the minimum OPP with zero utilization the target is the
        // minimum OPP: the gap is exactly zero.
        assert!(g.is_settled_at(0.0));
    }

    #[test]
    fn utilization_clamped() {
        let mut g = Governor::for_range(300.0, 3000.0);
        for _ in 0..60 {
            g.tick(5.0);
        }
        assert!(g.frequency_mhz() <= 3000.0);
    }
}
