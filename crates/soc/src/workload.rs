//! The workload abstraction consumed by the simulation engine.
//!
//! A [`Workload`] is a pure function from normalized execution time to a
//! [`Demand`] on the SoC's components. Benchmark models (crate
//! `mwc-workloads`) implement this trait; the engine samples it once per
//! tick.

use crate::aie::AieDemand;
use crate::cpu::CpuDemand;
use crate::gpu::GpuDemand;
use crate::memory::MemoryDemand;
use crate::storage::IoDemand;

/// Everything a workload asks of the SoC during one tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Demand {
    /// Runnable CPU threads.
    pub cpu: CpuDemand,
    /// GPU work, if any.
    pub gpu: Option<GpuDemand>,
    /// AIE work, if any.
    pub aie: Option<AieDemand>,
    /// Memory residency and streaming bandwidth.
    pub memory: MemoryDemand,
    /// Storage IO, if any.
    pub io: Option<IoDemand>,
}

impl Demand {
    /// A demand that exercises nothing.
    pub fn idle() -> Self {
        Demand::default()
    }

    /// Whether the engine's seeded run-to-run noise leaves this demand
    /// untouched: noise perturbs CPU thread intensities and GPU/AIE
    /// intensities, so a demand with no threads and no GPU/AIE work
    /// consumes zero random draws per tick. The event engine relies on
    /// this to coast over idle stretches without desynchronizing the RNG
    /// stream from the dense engine.
    pub fn is_noise_free(&self) -> bool {
        self.cpu.threads.is_empty() && self.gpu.is_none() && self.aie.is_none()
    }
}

/// A workload the engine can execute.
///
/// Implementations must be deterministic: the engine adds its own seeded
/// run-to-run noise, so `demand_at` should return the same demand for the
/// same `t_norm` every time.
pub trait Workload {
    /// Short, unique, human-readable name.
    fn name(&self) -> &str;

    /// Total execution time in seconds on the reference platform.
    fn duration_seconds(&self) -> f64;

    /// The demand at normalized time `t_norm ∈ [0, 1)`.
    fn demand_at(&self, t_norm: f64) -> Demand;

    /// How long the demand at `t_norm` is guaranteed to stay constant: a
    /// normalized time `hold` such that `demand_at(t)` returns a demand
    /// equal (by `PartialEq`) to `demand_at(t_norm)` for every
    /// `t ∈ [t_norm, hold)`. The event engine uses this hint to schedule
    /// one demand-change event per constant phase instead of re-sampling
    /// the workload every tick.
    ///
    /// The default returns `t_norm` itself — "no guarantee past this
    /// instant" — which degrades the event engine to dense per-tick
    /// sampling and is always correct. Implementations returning a larger
    /// value (phase boundaries, or `1.0` for constant workloads) must
    /// uphold the constancy contract or the event engine will diverge
    /// from the dense one.
    fn demand_hold_until(&self, t_norm: f64) -> f64 {
        t_norm
    }
}

/// A workload with a constant demand over a fixed duration; useful for
/// calibration, testing and micro-studies.
#[derive(Debug, Clone)]
pub struct ConstantWorkload {
    name: String,
    duration: f64,
    demand: Demand,
}

impl ConstantWorkload {
    /// Create a constant workload.
    pub fn new(name: impl Into<String>, duration_seconds: f64, demand: Demand) -> Self {
        ConstantWorkload {
            name: name.into(),
            duration: duration_seconds,
            demand,
        }
    }
}

impl Workload for ConstantWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn duration_seconds(&self) -> f64 {
        self.duration
    }

    fn demand_at(&self, _t_norm: f64) -> Demand {
        self.demand.clone()
    }

    fn demand_hold_until(&self, _t_norm: f64) -> f64 {
        // Constant by construction: the demand holds for the whole run.
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_demand_is_empty() {
        let d = Demand::idle();
        assert!(d.cpu.is_idle());
        assert!(d.gpu.is_none());
        assert!(d.aie.is_none());
        assert!(d.io.is_none());
    }

    #[test]
    fn constant_workload_is_constant() {
        let mut d = Demand::idle();
        d.cpu = CpuDemand::single_thread(0.5);
        let w = ConstantWorkload::new("w", 3.0, d.clone());
        assert_eq!(w.name(), "w");
        assert_eq!(w.duration_seconds(), 3.0);
        assert_eq!(w.demand_at(0.0), d);
        assert_eq!(w.demand_at(0.99), d);
    }

    #[test]
    fn constant_workload_holds_for_the_whole_run() {
        let w = ConstantWorkload::new("w", 3.0, Demand::idle());
        assert_eq!(w.demand_hold_until(0.0), 1.0);
        assert_eq!(w.demand_hold_until(0.73), 1.0);
    }

    #[test]
    fn default_hold_gives_no_guarantee() {
        struct Bare;
        impl Workload for Bare {
            fn name(&self) -> &str {
                "bare"
            }
            fn duration_seconds(&self) -> f64 {
                1.0
            }
            fn demand_at(&self, _t_norm: f64) -> Demand {
                Demand::idle()
            }
        }
        assert_eq!(Bare.demand_hold_until(0.25), 0.25);
    }

    #[test]
    fn noise_free_demand_detection() {
        assert!(Demand::idle().is_noise_free());
        let mut d = Demand::idle();
        d.io = Some(crate::storage::IoDemand::sequential(100.0, 0.0));
        d.memory.footprint_mib = 512.0;
        assert!(d.is_noise_free(), "io/memory demand draws no noise");
        let mut d = Demand::idle();
        d.cpu = CpuDemand::single_thread(0.5);
        assert!(!d.is_noise_free());
        let mut d = Demand::idle();
        d.gpu = Some(crate::gpu::GpuDemand::scene(0.1));
        assert!(!d.is_noise_free());
    }
}
