//! The workload abstraction consumed by the simulation engine.
//!
//! A [`Workload`] is a pure function from normalized execution time to a
//! [`Demand`] on the SoC's components. Benchmark models (crate
//! `mwc-workloads`) implement this trait; the engine samples it once per
//! tick.

use crate::aie::AieDemand;
use crate::cpu::CpuDemand;
use crate::gpu::GpuDemand;
use crate::memory::MemoryDemand;
use crate::storage::IoDemand;

/// Everything a workload asks of the SoC during one tick.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Demand {
    /// Runnable CPU threads.
    pub cpu: CpuDemand,
    /// GPU work, if any.
    pub gpu: Option<GpuDemand>,
    /// AIE work, if any.
    pub aie: Option<AieDemand>,
    /// Memory residency and streaming bandwidth.
    pub memory: MemoryDemand,
    /// Storage IO, if any.
    pub io: Option<IoDemand>,
}

impl Demand {
    /// A demand that exercises nothing.
    pub fn idle() -> Self {
        Demand::default()
    }
}

/// A workload the engine can execute.
///
/// Implementations must be deterministic: the engine adds its own seeded
/// run-to-run noise, so `demand_at` should return the same demand for the
/// same `t_norm` every time.
pub trait Workload {
    /// Short, unique, human-readable name.
    fn name(&self) -> &str;

    /// Total execution time in seconds on the reference platform.
    fn duration_seconds(&self) -> f64;

    /// The demand at normalized time `t_norm ∈ [0, 1)`.
    fn demand_at(&self, t_norm: f64) -> Demand;
}

/// A workload with a constant demand over a fixed duration; useful for
/// calibration, testing and micro-studies.
#[derive(Debug, Clone)]
pub struct ConstantWorkload {
    name: String,
    duration: f64,
    demand: Demand,
}

impl ConstantWorkload {
    /// Create a constant workload.
    pub fn new(name: impl Into<String>, duration_seconds: f64, demand: Demand) -> Self {
        ConstantWorkload {
            name: name.into(),
            duration: duration_seconds,
            demand,
        }
    }
}

impl Workload for ConstantWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn duration_seconds(&self) -> f64 {
        self.duration
    }

    fn demand_at(&self, _t_norm: f64) -> Demand {
        self.demand.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_demand_is_empty() {
        let d = Demand::idle();
        assert!(d.cpu.is_idle());
        assert!(d.gpu.is_none());
        assert!(d.aie.is_none());
        assert!(d.io.is_none());
    }

    #[test]
    fn constant_workload_is_constant() {
        let mut d = Demand::idle();
        d.cpu = CpuDemand::single_thread(0.5);
        let w = ConstantWorkload::new("w", 3.0, d.clone());
        assert_eq!(w.name(), "w");
        assert_eq!(w.duration_seconds(), 3.0);
        assert_eq!(w.demand_at(0.0), d);
        assert_eq!(w.demand_at(0.99), d);
    }
}
