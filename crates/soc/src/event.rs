//! The event layer of the simulation engine: a tick-granular simulation
//! clock, a binary-heap event queue and the device/event vocabulary the
//! event-driven core (`Engine::run_event`) schedules with.
//!
//! The dense engine advances every component model on every tick, so
//! simulation cost scales with duration × component count regardless of
//! activity. The event layer inverts that: the engine only *steps* the
//! model at ticks where something is scheduled to happen — a workload
//! phase boundary ([`EventKind::DemandChange`]), an active demand whose
//! per-tick noise must advance the RNG ([`EventKind::NoiseTick`]), or a
//! device whose internal state (a DVFS ramp) is still evolving
//! ([`EventKind::DeviceWake`]). Between scheduled ticks the model is
//! provably at a fixpoint and the counter sampler materializes samples by
//! replication, without touching the model — which is what keeps the
//! event engine bit-identical to the dense one (see `DESIGN.md` §15).
//!
//! All time arithmetic shared by the dense and event paths lives in
//! [`SimClock`], so the two engines cannot disagree about tick counts or
//! normalized times.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::TICK_SECONDS;

/// The largest normalized time the engine ever samples a workload at:
/// the greatest `f64` strictly below 1.0, keeping every sampled time
/// inside the documented `t_norm ∈ [0, 1)` domain of
/// [`crate::workload::Workload::demand_at`] even when the tick count was
/// rounded up.
pub const MAX_T_NORM: f64 = 1.0 - f64::EPSILON / 2.0;

/// A tick-granular simulation clock over a fixed-duration run.
///
/// Both engine paths derive tick counts, wall-clock times and normalized
/// times from here, so the dense and event engines share one definition
/// of time — including the two domain guarantees:
///
/// * any *positive* duration executes at least one tick, even when it is
///   shorter than half a tick (the naive `round()` would yield zero and
///   silently contradict the "non-positive duration ⇒ empty trace"
///   contract);
/// * every sampled normalized time stays strictly below 1.0
///   ([`MAX_T_NORM`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimClock {
    duration_seconds: f64,
    ticks: u64,
}

impl SimClock {
    /// Build a clock for a run of the given duration. Non-positive (or
    /// NaN) durations yield a zero-tick clock; positive durations yield
    /// `round(duration / TICK_SECONDS)` ticks, floored at one.
    pub fn for_duration(duration_seconds: f64) -> Self {
        let ticks = if duration_seconds > 0.0 {
            ((duration_seconds / TICK_SECONDS).round() as u64).max(1)
        } else {
            0
        };
        SimClock {
            duration_seconds,
            ticks,
        }
    }

    /// Number of ticks the run executes.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The run duration this clock was built for, in seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.duration_seconds
    }

    /// Wall-clock time of a tick, in seconds.
    pub fn time_s(&self, tick: u64) -> f64 {
        tick as f64 * TICK_SECONDS
    }

    /// Normalized time of a tick, clamped into the `[0, 1)` domain of
    /// [`crate::workload::Workload::demand_at`].
    pub fn t_norm(&self, tick: u64) -> f64 {
        (self.time_s(tick) / self.duration_seconds).min(MAX_T_NORM)
    }

    /// The first tick after `after` whose normalized time falls outside
    /// the constant-demand interval ending (exclusively) at `hold_norm` —
    /// i.e. where a [`EventKind::DemandChange`] event must fire. Clamped
    /// to `[after + 1, ticks]`; a hold that does not extend past `after`
    /// (including NaN) degenerates to `after + 1`, which is the dense
    /// re-sample-every-tick behaviour.
    ///
    /// The arithmetic first estimates the boundary in closed form, then
    /// adjusts against the authoritative per-tick predicate
    /// (`t_norm(tick) < hold_norm`) so floating-point error in the
    /// estimate can never make the event engine hold a demand one tick
    /// longer (or shorter) than the dense engine would observe it.
    pub fn boundary_tick(&self, after: u64, hold_norm: f64) -> u64 {
        // `partial_cmp` so a NaN hold (incomparable) also degenerates.
        if hold_norm.partial_cmp(&self.t_norm(after)) != Some(std::cmp::Ordering::Greater) {
            return (after + 1).min(self.ticks);
        }
        if hold_norm >= 1.0 {
            return self.ticks;
        }
        let estimate = ((hold_norm * self.duration_seconds) / TICK_SECONDS).ceil();
        let mut b = if estimate.is_finite() && estimate > 0.0 {
            (estimate as u64).clamp(after + 1, self.ticks)
        } else {
            after + 1
        };
        while b > after + 1 && self.t_norm(b - 1) >= hold_norm {
            b -= 1;
        }
        while b < self.ticks && self.t_norm(b) < hold_norm {
            b += 1;
        }
        b
    }
}

/// A simulated device the engine can schedule a wakeup for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceId {
    /// CPU cluster at the given `SocConfig::clusters` index.
    Cluster(usize),
    /// The GPU.
    Gpu,
    /// The AI engine.
    Aie,
    /// System DRAM (stateless model — never actually scheduled).
    Memory,
    /// Flash storage (stateless model — never actually scheduled).
    Storage,
}

/// What the engine must do at a scheduled tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// The workload's demand may change at this tick (phase boundary
    /// reached, or the workload gives no constancy hint): re-sample
    /// [`crate::workload::Workload::demand_at`] and schedule the next
    /// boundary.
    DemandChange,
    /// The current demand is subject to per-tick run-to-run noise, so the
    /// RNG stream (and therefore the whole model) must advance this tick
    /// even though the underlying demand is constant.
    NoiseTick,
    /// A device's internal state (its DVFS ramp) has not reached its
    /// fixpoint yet and must be ticked.
    DeviceWake(DeviceId),
}

/// One scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Tick index the event fires at.
    pub tick: u64,
    /// What fires.
    pub kind: EventKind,
    /// Monotonic insertion index: makes the heap order total and FIFO
    /// among events scheduled for the same tick.
    seq: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on purpose: BinaryHeap is a max-heap, and the queue
        // must pop the earliest (tick, seq) first.
        other
            .tick
            .cmp(&self.tick)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Summary of every event due at one tick, as drained by
/// [`EventQueue::pop_due`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DueEvents {
    /// A [`EventKind::DemandChange`] was due: re-sample the workload.
    pub demand_change: bool,
    /// A [`EventKind::NoiseTick`] was due: the RNG must advance.
    pub noise: bool,
    /// Number of [`EventKind::DeviceWake`]s due.
    pub device_wakes: usize,
}

impl DueEvents {
    /// Whether anything at all was due.
    pub fn any(&self) -> bool {
        self.demand_change || self.noise || self.device_wakes > 0
    }
}

/// A binary-heap event queue ordered by `(tick, insertion order)`.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    seq: u64,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedule an event. Duplicate `(tick, kind)` entries are allowed;
    /// [`EventQueue::pop_due`] coalesces them.
    pub fn schedule(&mut self, tick: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Event { tick, kind, seq });
    }

    /// Tick of the earliest pending event, if any.
    pub fn next_tick(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.tick)
    }

    /// Drain every event due at or before `tick` into a summary.
    pub fn pop_due(&mut self, tick: u64) -> DueEvents {
        let mut due = DueEvents::default();
        while let Some(e) = self.heap.peek() {
            if e.tick > tick {
                break;
            }
            match e.kind {
                EventKind::DemandChange => due.demand_change = true,
                EventKind::NoiseTick => due.noise = true,
                EventKind::DeviceWake(_) => due.device_wakes += 1,
            }
            self.heap.pop();
        }
        due
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_duration_executes_at_least_one_tick() {
        // Shorter than half a tick: round() alone would yield zero.
        let c = SimClock::for_duration(TICK_SECONDS / 4.0);
        assert_eq!(c.ticks(), 1);
        let c = SimClock::for_duration(1e-9);
        assert_eq!(c.ticks(), 1);
    }

    #[test]
    fn non_positive_duration_has_no_ticks() {
        assert_eq!(SimClock::for_duration(0.0).ticks(), 0);
        assert_eq!(SimClock::for_duration(-3.0).ticks(), 0);
        assert_eq!(SimClock::for_duration(f64::NAN).ticks(), 0);
    }

    #[test]
    fn ordinary_durations_round_to_nearest_tick() {
        assert_eq!(SimClock::for_duration(5.0).ticks(), 50);
        assert_eq!(SimClock::for_duration(5.04).ticks(), 50);
        assert_eq!(SimClock::for_duration(5.06).ticks(), 51);
    }

    #[test]
    fn t_norm_stays_in_domain() {
        for duration in [1e-6, 0.04, 0.06, 0.14999, 1.0, 3.337, 120.0] {
            let c = SimClock::for_duration(duration);
            assert!(c.ticks() >= 1);
            for tick in 0..c.ticks() {
                let tn = c.t_norm(tick);
                assert!(
                    (0.0..1.0).contains(&tn),
                    "t_norm {tn} out of [0, 1) for duration {duration}, tick {tick}"
                );
            }
        }
    }

    #[test]
    fn max_t_norm_is_strictly_below_one() {
        let max = MAX_T_NORM;
        assert!(max < 1.0);
        // The very next representable value is 1.0: the clamp loses the
        // least resolution possible.
        assert_eq!(f64::from_bits(max.to_bits() + 1), 1.0);
    }

    #[test]
    fn boundary_tick_matches_the_per_tick_predicate() {
        let c = SimClock::for_duration(10.0);
        for hold in [0.0, 0.1, 0.25, 1.0 / 3.0, 0.5, 0.749999, 0.99, 1.0] {
            for after in [0u64, 1, 13, 49, 99] {
                let b = c.boundary_tick(after, hold);
                assert!(b > after && b <= c.ticks());
                // Everything strictly inside (after, b) still holds…
                for t in (after + 1)..b {
                    assert!(c.t_norm(t) < hold, "tick {t} escaped hold {hold}");
                }
                // …and b itself does not (unless the run ended first).
                if b < c.ticks() {
                    assert!(c.t_norm(b) >= hold, "tick {b} still held at {hold}");
                }
            }
        }
    }

    #[test]
    fn boundary_tick_degenerates_to_next_tick_without_a_hold() {
        let c = SimClock::for_duration(10.0);
        assert_eq!(c.boundary_tick(7, c.t_norm(7)), 8);
        assert_eq!(c.boundary_tick(7, 0.0), 8);
        assert_eq!(c.boundary_tick(7, f64::NAN), 8);
    }

    #[test]
    fn full_hold_runs_to_the_end() {
        let c = SimClock::for_duration(10.0);
        assert_eq!(c.boundary_tick(0, 1.0), c.ticks());
        assert_eq!(c.boundary_tick(42, 2.0), c.ticks());
    }

    #[test]
    fn queue_pops_in_tick_then_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(5, EventKind::NoiseTick);
        q.schedule(2, EventKind::DemandChange);
        q.schedule(2, EventKind::DeviceWake(DeviceId::Gpu));
        assert_eq!(q.next_tick(), Some(2));
        let due = q.pop_due(2);
        assert!(due.demand_change);
        assert_eq!(due.device_wakes, 1);
        assert!(!due.noise);
        assert_eq!(q.next_tick(), Some(5));
        let due = q.pop_due(5);
        assert!(due.noise && !due.demand_change);
        assert!(q.is_empty());
    }

    #[test]
    fn pop_due_leaves_future_events_alone() {
        let mut q = EventQueue::new();
        q.schedule(3, EventKind::DemandChange);
        q.schedule(9, EventKind::DemandChange);
        let due = q.pop_due(3);
        assert!(due.demand_change);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_tick(), Some(9));
        assert!(!q.pop_due(8).any());
    }

    #[test]
    fn duplicate_events_coalesce() {
        let mut q = EventQueue::new();
        q.schedule(1, EventKind::DeviceWake(DeviceId::Cluster(0)));
        q.schedule(1, EventKind::DeviceWake(DeviceId::Cluster(1)));
        q.schedule(1, EventKind::DeviceWake(DeviceId::Cluster(0)));
        let due = q.pop_due(1);
        assert_eq!(due.device_wakes, 3);
        assert!(q.is_empty());
    }
}
