//! The simulation engine.
//!
//! [`Engine::run`] executes a [`Workload`] over a tick-granular
//! [`SimClock`]; each executed tick:
//!
//! 1. sample the workload's demand and apply small seeded run-to-run noise
//!    (the paper averages three runs of every benchmark);
//! 2. tick the AIE — unsupported video codecs bounce back as CPU fallback
//!    threads (the AV1 effect of §V-B);
//! 3. tick the GPU — texture residency becomes shared-cache contention for
//!    the CPU clusters (the paper's explanation for low graphics IPC);
//! 4. place CPU threads with the EAS scheduler and tick every cluster;
//! 5. tick memory and storage and record a [`TickSample`].
//!
//! Two interchangeable cores drive that loop. The **dense** core executes
//! every tick. The **event** core (the default) executes only ticks where
//! something can change — a workload phase boundary, a demand whose noise
//! must advance the RNG, or a device still ramping its DVFS governor —
//! and materializes the in-between samples by replication, because at
//! those ticks the whole SoC is provably at a fixpoint and a dense tick
//! would be a state-preserving identity. Both cores produce bit-identical
//! traces; `tests/event_engine.rs` and the `MWC_SOC_ENGINE=dense` gate in
//! `scripts/verify.sh` pin that equivalence. See `DESIGN.md` §15.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::aie::Aie;
use crate::config::SocConfig;
use crate::counters::{ClusterSample, TickSample, Trace};
use crate::cpu::{Cluster, ThreadDemand};
use crate::error::SocError;
use crate::event::{DeviceId, EventKind, EventQueue, SimClock};
use crate::gpu::Gpu;
use crate::memory::Memory;
use crate::sched::Scheduler;
use crate::storage::Storage;
use crate::workload::{Demand, Workload};
use crate::TICK_SECONDS;

/// Relative amplitude of the seeded per-tick noise applied to demands.
const NOISE_AMPLITUDE: f64 = 0.02;

/// SplitMix64 finalizer: a bijective avalanche mix over 64 bits.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the noise-stream seed of one `(study, unit, run)` capture.
///
/// Each component is absorbed through a SplitMix64 finalizer, so every
/// capture gets an independent stream that depends only on the study seed
/// and the capture's own coordinates — never on which captures ran before
/// it on the same engine. This order independence is what lets the
/// parallel characterization pipeline partition units across workers in
/// any way whatsoever and still reproduce the serial study bit for bit.
pub fn stream_seed(study_seed: u64, unit_index: u64, run_index: u64) -> u64 {
    let mut h = mix64(study_seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
    h = mix64(h ^ unit_index.wrapping_add(0xD1B5_4A32_D192_ED03));
    h = mix64(h ^ run_index.wrapping_add(0x8CB9_2BA7_2F3D_8DD7));
    h
}

/// Bytes transferred per DRAM access (one cache line).
const CACHE_LINE_BYTES: f64 = 64.0;

/// Which simulation core [`Engine::run`] uses. Both produce bit-identical
/// traces; they differ only in how much work they do per simulated second.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EngineMode {
    /// Event-driven core (default): only ticks with scheduled events
    /// execute the component models; quiescent stretches are sampled by
    /// replication.
    #[default]
    Event,
    /// Dense core: every tick executes every component model. Kept as the
    /// executable specification the event core is gated against.
    Dense,
}

impl EngineMode {
    /// Resolve the mode from the `MWC_SOC_ENGINE` environment variable:
    /// `dense` selects [`EngineMode::Dense`]; anything else (or unset)
    /// selects the default event core.
    pub fn from_env() -> Self {
        match std::env::var("MWC_SOC_ENGINE") {
            Ok(v) if v.eq_ignore_ascii_case("dense") => EngineMode::Dense,
            _ => EngineMode::Event,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            EngineMode::Event => "event",
            EngineMode::Dense => "dense",
        }
    }
}

/// The simulation engine: a configured SoC ready to run workloads.
#[derive(Debug)]
pub struct Engine {
    config: SocConfig,
    clusters: Vec<Cluster>,
    gpu: Option<Gpu>,
    aie: Option<Aie>,
    memory: Memory,
    storage: Storage,
    scheduler: Scheduler,
    rng: StdRng,
    mode: EngineMode,
}

impl Engine {
    /// Build an engine for the given platform. Fails if the configuration
    /// does not validate.
    pub fn new(config: SocConfig, seed: u64) -> Result<Self, SocError> {
        Engine::with_policies(
            config,
            seed,
            crate::freq::GovernorPolicy::Schedutil,
            crate::sched::PlacementPolicy::EnergyAware,
        )
    }

    /// Build an engine with explicit DVFS and thread-placement policies
    /// (design-space ablations; the paper's platform corresponds to
    /// [`Engine::new`]'s defaults).
    pub fn with_policies(
        config: SocConfig,
        seed: u64,
        governor: crate::freq::GovernorPolicy,
        placement: crate::sched::PlacementPolicy,
    ) -> Result<Self, SocError> {
        config.validate()?;
        let clusters = config
            .clusters
            .iter()
            .map(|c| {
                let mut cluster = Cluster::new(c.clone(), config.l3.clone(), config.slc.clone());
                cluster.set_governor_policy(governor);
                cluster
            })
            .collect();
        let gpu = config.gpu.clone().map(Gpu::new);
        let aie = config.aie.clone().map(Aie::new);
        let memory = Memory::new(config.memory.clone());
        let storage = Storage::new(config.storage.clone());
        let scheduler = Scheduler::with_policy(&config, placement);
        Ok(Engine {
            config,
            clusters,
            gpu,
            aie,
            memory,
            storage,
            scheduler,
            rng: StdRng::seed_from_u64(seed),
            mode: EngineMode::from_env(),
        })
    }

    /// The platform configuration this engine simulates.
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// The active simulation core.
    pub fn mode(&self) -> EngineMode {
        self.mode
    }

    /// Select the simulation core explicitly, overriding the
    /// `MWC_SOC_ENGINE` environment resolution done at construction.
    /// Both cores are bit-identical, so this is a performance knob (and
    /// the seam the equivalence tests switch on), never a semantic one.
    pub fn set_mode(&mut self, mode: EngineMode) {
        self.mode = mode;
    }

    /// Reset all DVFS and contention state, and reseed the noise source.
    /// Call between benchmark runs to emulate a device returning to idle.
    pub fn reset(&mut self, seed: u64) {
        for c in &mut self.clusters {
            c.reset();
        }
        if let Some(gpu) = &mut self.gpu {
            gpu.reset();
        }
        if let Some(aie) = &mut self.aie {
            aie.reset();
        }
        self.rng = StdRng::seed_from_u64(seed);
    }

    /// Reset for one `(study, unit, run)` capture, seeding the noise
    /// source with [`stream_seed`] of the capture's coordinates.
    pub fn reset_for(&mut self, study_seed: u64, unit_index: u64, run_index: u64) {
        self.reset(stream_seed(study_seed, unit_index, run_index));
    }

    /// Multiplicative noise factor around 1.0.
    fn noise(&mut self) -> f64 {
        1.0 + self.rng.gen_range(-NOISE_AMPLITUDE..=NOISE_AMPLITUDE)
    }

    /// Run a workload to completion and return the counter trace.
    ///
    /// Workloads with a non-positive duration yield an empty trace; any
    /// positive duration — however short — executes at least one tick,
    /// and every sampled normalized time stays inside the `[0, 1)` domain
    /// of [`Workload::demand_at`] (both guarantees come from
    /// [`SimClock`]).
    ///
    /// When `mwc-obs` collection is enabled the run is wrapped in a
    /// `soc.run` span (fields: workload name, tick count, engine mode)
    /// and the tick count feeds the `soc.ticks` counter; the event core
    /// additionally reports `soc.ticks_stepped` / `soc.ticks_coasted`.
    /// The simulation itself never reads any observability state, so
    /// traced and untraced runs are bit-identical.
    pub fn run(&mut self, workload: &dyn Workload) -> Trace {
        let clock = SimClock::for_duration(workload.duration_seconds());
        let mut run_span = mwc_obs::span("soc.run");
        run_span.field("workload", workload.name());
        run_span.field("ticks", clock.ticks());
        run_span.field("engine", self.mode.name());
        mwc_obs::metrics::counter_add("soc.ticks", clock.ticks());
        mwc_obs::metrics::counter_add("soc.runs", 1);

        let samples = match self.mode {
            EngineMode::Event => self.run_event(workload, &clock),
            EngineMode::Dense => self.run_dense(workload, &clock),
        };

        if let Some(ns) = run_span.elapsed_ns() {
            mwc_obs::metrics::observe_duration_ns("soc.run_ns", ns);
        }
        Trace {
            workload: workload.name().to_owned(),
            tick_seconds: TICK_SECONDS,
            samples,
        }
    }

    /// The dense core: execute every component model on every tick. This
    /// is the executable specification of the simulator's semantics; the
    /// event core is gated bit-for-bit against it.
    fn run_dense(&mut self, workload: &dyn Workload, clock: &SimClock) -> Vec<TickSample> {
        let mut samples = Vec::with_capacity(clock.ticks() as usize);
        for tick in 0..clock.ticks() {
            let mut demand = workload.demand_at(clock.t_norm(tick));
            self.perturb(&mut demand);
            samples.push(self.step(clock.time_s(tick), demand));
        }
        samples
    }

    /// The event core: execute only ticks with scheduled events and
    /// replicate samples across the quiescent stretches in between.
    ///
    /// A tick must execute ([`Engine::step`]) when any of these hold:
    ///
    /// * **demand change** — the workload's constancy hint
    ///   ([`Workload::demand_hold_until`]) expires, so the demand must be
    ///   re-sampled (scheduled via [`SimClock::boundary_tick`], which
    ///   agrees bit-for-bit with per-tick re-sampling);
    /// * **noise** — the held demand has CPU threads or GPU/AIE work, so
    ///   [`Engine::perturb`] draws from the RNG every tick and skipping
    ///   one would desynchronize the noise stream from the dense core;
    /// * **device wake** — some device's DVFS governor has not reached
    ///   its idle fixpoint, so ticking it still changes state.
    ///
    /// When none hold, a dense tick is a state-preserving identity that
    /// consumes no randomness and reproduces the previous sample exactly
    /// (memory and storage are stateless pure functions, and the
    /// scheduler sees no runnable threads) — so the sampler materializes
    /// the remaining samples by replicating the last one with an updated
    /// timestamp, at zero model cost. This is what makes idle-heavy and
    /// phase-sparse workloads cheap: cost scales with *activity*, not
    /// duration.
    fn run_event(&mut self, workload: &dyn Workload, clock: &SimClock) -> Vec<TickSample> {
        let ticks = clock.ticks();
        let mut samples: Vec<TickSample> = Vec::with_capacity(ticks as usize);
        let mut queue = EventQueue::new();
        let mut held_demand = Demand::idle();
        let mut stepped: u64 = 0;
        if ticks > 0 {
            queue.schedule(0, EventKind::DemandChange);
        }

        while let Some(tick) = queue.next_tick() {
            if tick >= ticks {
                break;
            }
            let due = queue.pop_due(tick);
            if due.demand_change {
                let t_norm = clock.t_norm(tick);
                held_demand = workload.demand_at(t_norm);
                let boundary = clock.boundary_tick(tick, workload.demand_hold_until(t_norm));
                if boundary < ticks {
                    queue.schedule(boundary, EventKind::DemandChange);
                }
            }

            let mut demand = held_demand.clone();
            self.perturb(&mut demand);
            samples.push(self.step(clock.time_s(tick), demand));
            stepped += 1;

            // Decide what must wake the model next.
            if !held_demand.is_noise_free() {
                // The RNG draws for this demand every tick; every tick of
                // the hold interval must execute.
                queue.schedule(tick + 1, EventKind::NoiseTick);
            } else {
                // No randomness in play: only devices still moving toward
                // their fixpoints need further ticks. Memory and storage
                // are stateless and never wake.
                for (i, cluster) in self.clusters.iter().enumerate() {
                    if !cluster.is_quiescent() {
                        queue.schedule(tick + 1, EventKind::DeviceWake(DeviceId::Cluster(i)));
                    }
                }
                if self.gpu.as_ref().is_some_and(|g| !g.is_quiescent()) {
                    queue.schedule(tick + 1, EventKind::DeviceWake(DeviceId::Gpu));
                }
                if self.aie.as_ref().is_some_and(|a| !a.is_quiescent()) {
                    queue.schedule(tick + 1, EventKind::DeviceWake(DeviceId::Aie));
                }
            }

            // Coast: every tick before the next event reproduces the
            // sample just taken (same fixpoint state, same inputs, zero
            // RNG draws), so materialize those samples by replication.
            let resume = queue.next_tick().unwrap_or(ticks).min(ticks);
            if resume > tick + 1 {
                if let Some(last) = samples.last().cloned() {
                    for coast_tick in (tick + 1)..resume {
                        let mut sample = last.clone();
                        sample.time_s = clock.time_s(coast_tick);
                        samples.push(sample);
                    }
                }
            }
        }

        mwc_obs::metrics::counter_add("soc.ticks_stepped", stepped);
        mwc_obs::metrics::counter_add("soc.ticks_coasted", ticks.saturating_sub(stepped));
        samples
    }

    /// Apply seeded run-to-run noise to a demand.
    fn perturb(&mut self, demand: &mut Demand) {
        for thread in &mut demand.cpu.threads {
            thread.intensity = (thread.intensity * self.noise()).clamp(0.0, 1.0);
        }
        if let Some(gpu) = &mut demand.gpu {
            gpu.intensity = (gpu.intensity * self.noise()).clamp(0.0, 1.0);
        }
        if let Some(aie) = &mut demand.aie {
            aie.intensity = (aie.intensity * self.noise()).clamp(0.0, 1.0);
        }
    }

    /// Advance the whole SoC by one tick under the given demand.
    fn step(&mut self, time_s: f64, mut demand: Demand) -> TickSample {
        // 1. AIE first: unsupported work falls back to the CPU.
        let aie_result = match &mut self.aie {
            Some(aie) => aie.tick(demand.aie.as_ref(), TICK_SECONDS),
            None => {
                // No AIE at all: every DSP demand runs in software.
                let fallback = demand
                    .aie
                    .as_ref()
                    .map(|d| (d.intensity * d.kernel.base_load() * 1.8).min(1.0))
                    .unwrap_or(0.0);
                crate::aie::AieTickResult {
                    utilization: 0.0,
                    frequency_mhz: 0.0,
                    cpu_fallback_intensity: fallback,
                }
            }
        };
        if aie_result.cpu_fallback_intensity > 0.0 {
            let mut fallback = ThreadDemand::new(aie_result.cpu_fallback_intensity);
            fallback.mix = crate::cpu::InstructionMix::simd();
            fallback.working_set_kib = 4096.0;
            fallback.locality = 0.55;
            fallback.ilp = 0.6;
            demand.cpu.threads.push(fallback);
        }

        // 2. GPU: texture residency contends with the CPU in L3/SLC.
        let gpu_result = match &mut self.gpu {
            Some(gpu) => gpu.tick(demand.gpu.as_ref(), TICK_SECONDS),
            None => crate::gpu::GpuTickResult::idle(0.0),
        };
        // Textures squat mostly in the SLC (it is the SoC-wide cache) and
        // partly in L3.
        let slc_contention = gpu_result.cache_residency_kib * 0.7;
        let l3_contention = gpu_result.cache_residency_kib * 0.3;

        // 3. CPU: place threads and tick every cluster.
        let placement = self.scheduler.place(&demand.cpu);
        let mut cluster_samples = Vec::with_capacity(self.clusters.len());
        let mut instructions = 0.0;
        let mut cycles = 0.0;
        let mut cache_misses = 0.0;
        let mut branches = 0.0;
        let mut branch_misses = 0.0;
        let mut dram_accesses = 0.0;
        for (cluster, assigned) in self.clusters.iter_mut().zip(&placement.assignments) {
            cluster.set_shared_contention(l3_contention, slc_contention);
            let r = cluster.tick(assigned, TICK_SECONDS);
            instructions += r.counters.instructions;
            cycles += r.counters.cycles;
            cache_misses += r.counters.cache_misses;
            branches += r.counters.branches;
            branch_misses += r.counters.branch_misses;
            dram_accesses += r.counters.dram_accesses;
            cluster_samples.push(ClusterSample {
                kind: cluster.config().kind,
                utilization: r.utilization,
                frequency_mhz: r.frequency_mhz,
                load: r.load(cluster.config().max_freq_mhz),
                instructions: r.counters.instructions,
                cycles: r.counters.cycles,
            });
        }

        // 4. Memory: CPU DRAM traffic + GPU texture traffic + workload
        // streaming demand.
        let cpu_dram_gbps = dram_accesses * CACHE_LINE_BYTES / TICK_SECONDS / 1.0e9;
        let gpu_mem_gbps = gpu_result.bus_busy * self.config.memory.bandwidth_gbps * 0.5;
        let memory_result = self.memory.tick(
            &demand.memory,
            gpu_result.memory_mib,
            cpu_dram_gbps + gpu_mem_gbps,
        );

        // 5. Storage.
        let storage_result = self.storage.tick(demand.io.as_ref());

        let gpu_max_freq = self
            .config
            .gpu
            .as_ref()
            .map(|g| g.max_freq_mhz)
            .unwrap_or(0.0);
        let aie_max_freq = self
            .config
            .aie
            .as_ref()
            .map(|a| a.max_freq_mhz)
            .unwrap_or(0.0);

        TickSample {
            time_s,
            clusters: cluster_samples,
            instructions,
            cycles,
            cache_misses,
            branches,
            branch_misses,
            dram_accesses,
            gpu_utilization: gpu_result.utilization,
            gpu_frequency_mhz: gpu_result.frequency_mhz,
            gpu_load: gpu_result.load(gpu_max_freq),
            gpu_shaders_busy: gpu_result.shaders_busy,
            gpu_bus_busy: gpu_result.bus_busy,
            gpu_l1_texture_misses_m: gpu_result.l1_texture_misses_m,
            aie_utilization: aie_result.utilization,
            aie_frequency_mhz: aie_result.frequency_mhz,
            aie_load: aie_result.load(aie_max_freq),
            memory_used_mib: memory_result.total_used_mib,
            memory_used_fraction: memory_result.used_fraction,
            memory_bandwidth_utilization: memory_result.bandwidth_utilization,
            storage_busy: storage_result.busy,
            storage_read_mbps: storage_result.read_mbps,
            storage_write_mbps: storage_result.write_mbps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aie::{AieDemand, Codec, DspKernel};
    use crate::config::ClusterKind;
    use crate::cpu::CpuDemand;
    use crate::gpu::GpuDemand;
    use crate::workload::ConstantWorkload;

    fn engine() -> Engine {
        Engine::new(SocConfig::snapdragon_888(), 7).unwrap()
    }

    fn cpu_workload(intensity: f64, secs: f64) -> ConstantWorkload {
        let mut d = Demand::idle();
        d.cpu = CpuDemand::single_thread(intensity);
        ConstantWorkload::new("cpu", secs, d)
    }

    #[test]
    fn invalid_config_rejected() {
        let mut cfg = SocConfig::snapdragon_888();
        cfg.clusters.clear();
        assert!(Engine::new(cfg, 0).is_err());
    }

    #[test]
    fn run_produces_expected_tick_count() {
        let mut e = engine();
        let trace = e.run(&cpu_workload(0.8, 5.0));
        assert_eq!(trace.samples.len(), 50);
        assert!((trace.duration_seconds() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn busy_workload_executes_instructions() {
        let mut e = engine();
        let trace = e.run(&cpu_workload(0.9, 5.0));
        assert!(
            trace.total_instructions() > 1.0e9,
            "got {}",
            trace.total_instructions()
        );
        assert!(trace.ipc() > 0.3);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        let mut e1 = engine();
        let mut e2 = engine();
        let w = cpu_workload(0.7, 3.0);
        assert_eq!(e1.run(&w), e2.run(&w));
    }

    #[test]
    fn different_seeds_differ_slightly() {
        let mut e1 = Engine::new(SocConfig::snapdragon_888(), 1).unwrap();
        let mut e2 = Engine::new(SocConfig::snapdragon_888(), 2).unwrap();
        // Intensity must sit clear of HEAVY_THRESHOLD (0.70): at the
        // threshold the +/-2% noise flips placement between the big and
        // little clusters every tick, and totals become a per-tick coin
        // flip instead of "the same work, slightly perturbed".
        let w = cpu_workload(0.8, 3.0);
        let t1 = e1.run(&w);
        let t2 = e2.run(&w);
        assert_ne!(t1, t2);
        let rel =
            (t1.total_instructions() - t2.total_instructions()).abs() / t1.total_instructions();
        assert!(rel < 0.05, "noise should be small, rel diff {rel}");
    }

    #[test]
    fn heavy_single_thread_loads_big_cluster() {
        let mut e = engine();
        let trace = e.run(&cpu_workload(0.95, 10.0));
        let last = trace.samples.last().unwrap();
        let big = last
            .clusters
            .iter()
            .find(|c| c.kind == ClusterKind::Big)
            .unwrap();
        let mid = last
            .clusters
            .iter()
            .find(|c| c.kind == ClusterKind::Mid)
            .unwrap();
        assert!(big.load > 0.8, "big load {}", big.load);
        assert!(mid.load < 0.1, "mid load {}", mid.load);
    }

    #[test]
    fn gpu_workload_uses_little_cores_only() {
        let mut e = engine();
        let mut d = Demand::idle();
        d.cpu = CpuDemand::multi_thread(2, 0.25);
        d.gpu = Some(GpuDemand::scene(0.9));
        let trace = e.run(&ConstantWorkload::new("gfx", 10.0, d));
        let last = trace.samples.last().unwrap();
        let little = last
            .clusters
            .iter()
            .find(|c| c.kind == ClusterKind::Little)
            .unwrap();
        let big = last
            .clusters
            .iter()
            .find(|c| c.kind == ClusterKind::Big)
            .unwrap();
        assert!(little.utilization > 0.0);
        assert_eq!(big.utilization, 0.0);
        assert!(last.gpu_load > 0.3);
    }

    #[test]
    fn av1_decode_raises_cpu_load_versus_h264() {
        let make = |codec| {
            let mut d = Demand::idle();
            d.cpu = CpuDemand::single_thread(0.3);
            d.aie = Some(AieDemand::new(DspKernel::VideoDecode(codec), 0.9));
            ConstantWorkload::new("video", 10.0, d)
        };
        let mut e1 = engine();
        let t_h264 = e1.run(&make(Codec::H264));
        let mut e2 = engine();
        let t_av1 = e2.run(&make(Codec::Av1));
        let cpu_util =
            |t: &Trace| t.mean_of(|s| s.clusters.iter().map(|c| c.utilization).sum::<f64>());
        assert!(
            cpu_util(&t_av1) > cpu_util(&t_h264) * 1.5,
            "AV1 fallback must add CPU load: {} vs {}",
            cpu_util(&t_av1),
            cpu_util(&t_h264)
        );
        assert!(t_h264.mean_of(|s| s.aie_load) > t_av1.mean_of(|s| s.aie_load));
    }

    #[test]
    fn gpu_textures_depress_cpu_ipc() {
        let cpu_demand = || {
            let mut t = crate::cpu::ThreadDemand::new(0.9);
            t.working_set_kib = 5000.0;
            CpuDemand { threads: vec![t] }
        };
        let mut d_plain = Demand::idle();
        d_plain.cpu = cpu_demand();
        let mut d_gpu = d_plain.clone();
        let mut scene = GpuDemand::scene(0.9);
        scene.texture_mib = 1500.0;
        d_gpu.gpu = Some(scene);
        let mut e1 = engine();
        let t_plain = e1.run(&ConstantWorkload::new("plain", 10.0, d_plain));
        let mut e2 = engine();
        let t_gpu = e2.run(&ConstantWorkload::new("contended", 10.0, d_gpu));
        assert!(
            t_gpu.ipc() < t_plain.ipc(),
            "texture contention must cost IPC: {} vs {}",
            t_gpu.ipc(),
            t_plain.ipc()
        );
        assert!(t_gpu.cache_mpki() > t_plain.cache_mpki());
    }

    #[test]
    fn idle_workload_reports_baseline_memory() {
        let mut e = engine();
        let trace = e.run(&ConstantWorkload::new("idle", 2.0, Demand::idle()));
        let last = trace.samples.last().unwrap();
        assert!((last.memory_used_mib - e.config().memory.os_baseline_mib).abs() < 1.0);
        assert_eq!(last.storage_busy, 0.0);
    }

    #[test]
    fn stream_seeds_are_order_free_and_distinct() {
        // Pure function of the coordinates: no hidden state.
        assert_eq!(stream_seed(2024, 5, 2), stream_seed(2024, 5, 2));
        // Every coordinate matters.
        assert_ne!(stream_seed(2024, 5, 2), stream_seed(2025, 5, 2));
        assert_ne!(stream_seed(2024, 5, 2), stream_seed(2024, 6, 2));
        assert_ne!(stream_seed(2024, 5, 2), stream_seed(2024, 5, 3));
        // Swapping unit and run coordinates must not collide (a plain
        // `seed + unit + run` scheme would).
        assert_ne!(stream_seed(2024, 2, 5), stream_seed(2024, 5, 2));
    }

    #[test]
    fn reset_for_matches_explicit_stream_seed() {
        let w = cpu_workload(0.8, 2.0);
        let mut e1 = engine();
        e1.reset_for(2024, 3, 1);
        let mut e2 = engine();
        e2.reset(stream_seed(2024, 3, 1));
        assert_eq!(e1.run(&w), e2.run(&w));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut e = engine();
        let w = cpu_workload(0.9, 5.0);
        let t1 = e.run(&w);
        e.reset(7);
        let t2 = e.run(&w);
        assert_eq!(t1, t2, "reset must make runs reproducible");
    }

    #[test]
    fn performance_governor_raises_load_metric() {
        let w = cpu_workload(0.5, 5.0);
        let mut stock = engine();
        let mut pinned = Engine::with_policies(
            SocConfig::snapdragon_888(),
            7,
            crate::freq::GovernorPolicy::Performance,
            crate::sched::PlacementPolicy::EnergyAware,
        )
        .unwrap();
        let t_stock = stock.run(&w);
        let t_pinned = pinned.run(&w);
        let load = |t: &Trace| t.mean_of(|s| s.clusters.iter().map(|c| c.load).sum::<f64>());
        assert!(
            load(&t_pinned) > load(&t_stock),
            "pinning frequencies raises the load metric for the same work"
        );
    }

    #[test]
    fn little_only_policy_leaves_big_idle() {
        let mut e = Engine::with_policies(
            SocConfig::snapdragon_888(),
            7,
            crate::freq::GovernorPolicy::Schedutil,
            crate::sched::PlacementPolicy::LittleOnly,
        )
        .unwrap();
        let trace = e.run(&cpu_workload(0.95, 5.0));
        let last = trace.samples.last().unwrap();
        let big = last
            .clusters
            .iter()
            .find(|c| c.kind == ClusterKind::Big)
            .unwrap();
        assert_eq!(big.utilization, 0.0);
    }

    #[test]
    fn headless_platform_runs_cpu_work() {
        let cfg = SocConfig::builder("headless")
            .gpu(None)
            .aie(None)
            .build()
            .unwrap();
        let mut e = Engine::new(cfg, 3).unwrap();
        let trace = e.run(&cpu_workload(0.8, 3.0));
        assert!(trace.total_instructions() > 0.0);
        assert_eq!(trace.samples.last().unwrap().gpu_load, 0.0);
    }

    /// Workload shim that records every `t_norm` the engine samples.
    struct TNormProbe {
        duration: f64,
        sampled: std::cell::RefCell<Vec<f64>>,
    }

    impl TNormProbe {
        fn new(duration: f64) -> Self {
            TNormProbe {
                duration,
                sampled: std::cell::RefCell::new(Vec::new()),
            }
        }
    }

    impl Workload for TNormProbe {
        fn name(&self) -> &str {
            "t-norm-probe"
        }
        fn duration_seconds(&self) -> f64 {
            self.duration
        }
        fn demand_at(&self, t_norm: f64) -> Demand {
            self.sampled.borrow_mut().push(t_norm);
            let mut d = Demand::idle();
            // Noisy demand: forces the engine to sample every tick.
            d.cpu = CpuDemand::single_thread(0.5);
            d
        }
    }

    fn engine_in(mode: EngineMode) -> Engine {
        let mut e = engine();
        e.set_mode(mode);
        e
    }

    #[test]
    fn sub_half_tick_duration_still_produces_one_tick() {
        // Regression: `(duration / TICK_SECONDS).round()` alone yields 0
        // ticks for any positive duration below half a tick, silently
        // contradicting the "non-positive duration => empty trace" doc.
        for mode in [EngineMode::Event, EngineMode::Dense] {
            let mut e = engine_in(mode);
            let trace = e.run(&cpu_workload(0.8, TICK_SECONDS / 4.0));
            assert_eq!(trace.samples.len(), 1, "mode {mode:?}");
            let trace = e.run(&cpu_workload(0.8, 1e-9));
            assert_eq!(trace.samples.len(), 1, "mode {mode:?}");
        }
    }

    #[test]
    fn non_positive_duration_yields_empty_trace() {
        for mode in [EngineMode::Event, EngineMode::Dense] {
            let mut e = engine_in(mode);
            assert!(e.run(&cpu_workload(0.8, 0.0)).samples.is_empty());
            assert!(e.run(&cpu_workload(0.8, -2.0)).samples.is_empty());
        }
    }

    #[test]
    fn sampled_t_norm_stays_in_domain() {
        // Regression: rounding the tick count *up* used to let the last
        // tick's `t_norm` reach 1.0, outside `demand_at`'s documented
        // `[0, 1)` domain.
        for mode in [EngineMode::Event, EngineMode::Dense] {
            for duration in [1e-6, 0.04, 0.06, 0.14999, 1.0, 3.337] {
                let probe = TNormProbe::new(duration);
                let mut e = engine_in(mode);
                let trace = e.run(&probe);
                let sampled = probe.sampled.borrow();
                assert!(!sampled.is_empty());
                assert_eq!(trace.samples.len(), sampled.len(), "noisy: no coasting");
                for &t in sampled.iter() {
                    assert!(
                        (0.0..1.0).contains(&t),
                        "mode {mode:?}, duration {duration}: t_norm {t} out of domain"
                    );
                }
            }
        }
    }

    #[test]
    fn event_core_matches_dense_core_bit_for_bit() {
        let mut dense = engine_in(EngineMode::Dense);
        let mut event = engine_in(EngineMode::Event);
        // Constant busy workload (noisy every tick).
        let w = cpu_workload(0.8, 5.0);
        assert_eq!(dense.run(&w), event.run(&w));
        // Fully idle workload (pure coasting after tick 0).
        dense.reset(7);
        event.reset(7);
        let idle = ConstantWorkload::new("idle", 30.0, Demand::idle());
        assert_eq!(dense.run(&idle), event.run(&idle));
        // Idle with stateless-device demand (memory + io, no noise).
        dense.reset(7);
        event.reset(7);
        let mut d = Demand::idle();
        d.memory.footprint_mib = 512.0;
        d.io = Some(crate::storage::IoDemand::sequential(200.0, 50.0));
        let io = ConstantWorkload::new("io", 30.0, d);
        assert_eq!(dense.run(&io), event.run(&io));
    }

    #[test]
    fn event_core_coasts_the_idle_tail() {
        // Busy then idle: after the ramp-down the event core must stop
        // stepping. Observable without obs counters: a probe workload's
        // demand_at is called once per *executed* demand change only, and
        // the trace still has one sample per tick.
        let mut e = engine_in(EngineMode::Event);
        let idle = ConstantWorkload::new("idle", 60.0, Demand::idle());
        let trace = e.run(&idle);
        assert_eq!(trace.samples.len(), 600);
        // All samples identical except the timestamp.
        let first = &trace.samples[0];
        for (i, s) in trace.samples.iter().enumerate() {
            assert!((s.time_s - i as f64 * TICK_SECONDS).abs() < 1e-12);
            let mut expect = first.clone();
            expect.time_s = s.time_s;
            assert_eq!(&expect, s, "sample {i} diverged while idle");
        }
    }

    #[test]
    fn mode_plumbing_and_names() {
        let mut e = engine();
        e.set_mode(EngineMode::Dense);
        assert_eq!(e.mode(), EngineMode::Dense);
        assert_eq!(EngineMode::Dense.name(), "dense");
        assert_eq!(EngineMode::Event.name(), "event");
        assert_eq!(EngineMode::default(), EngineMode::Event);
    }

    #[test]
    fn event_determinism_same_seed_same_trace() {
        let mut e1 = engine_in(EngineMode::Event);
        let mut e2 = engine_in(EngineMode::Event);
        let w = cpu_workload(0.7, 3.0);
        assert_eq!(e1.run(&w), e2.run(&w));
    }

    #[test]
    fn no_aie_means_software_fallback() {
        let cfg = SocConfig::builder("no-aie").aie(None).build().unwrap();
        let mut e = Engine::new(cfg, 3).unwrap();
        let mut d = Demand::idle();
        d.aie = Some(AieDemand::new(DspKernel::VideoDecode(Codec::H264), 0.9));
        let trace = e.run(&ConstantWorkload::new("video", 5.0, d));
        let cpu_util = trace.mean_of(|s| s.clusters.iter().map(|c| c.utilization).sum::<f64>());
        assert!(cpu_util > 0.05, "software decode must load the CPU");
        assert_eq!(trace.mean_of(|s| s.aie_load), 0.0);
    }
}
