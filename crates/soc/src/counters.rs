//! Hardware-counter samples emitted by the engine.
//!
//! The engine produces one [`TickSample`] per tick — the simulated
//! equivalent of one Snapdragon-Profiler real-time capture row. A whole run
//! is a [`Trace`].

use crate::config::ClusterKind;

/// Per-cluster counters for one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterSample {
    /// Which cluster this row describes.
    pub kind: ClusterKind,
    /// Mean core utilization in `[0, 1]`.
    pub utilization: f64,
    /// Operating frequency in MHz.
    pub frequency_mhz: f64,
    /// The paper's CPU Load metric (frequency × utilization, normalized to
    /// the cluster's maximum frequency), in `[0, 1]`.
    pub load: f64,
    /// Instructions retired by the cluster this tick.
    pub instructions: f64,
    /// Active cycles spent this tick.
    pub cycles: f64,
}

/// All counters for one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TickSample {
    /// Wall-clock time of the sample, in seconds since run start.
    pub time_s: f64,
    /// Per-cluster rows, in `SocConfig::clusters` order.
    pub clusters: Vec<ClusterSample>,
    /// Total instructions retired across all clusters this tick.
    pub instructions: f64,
    /// Total active CPU cycles across all clusters this tick.
    pub cycles: f64,
    /// Cache misses across all hierarchy levels this tick.
    pub cache_misses: f64,
    /// Branches executed this tick.
    pub branches: f64,
    /// Branch mispredictions this tick.
    pub branch_misses: f64,
    /// Accesses that reached DRAM this tick.
    pub dram_accesses: f64,
    /// GPU utilization in `[0, 1]` (0 if the platform has no GPU).
    pub gpu_utilization: f64,
    /// GPU frequency in MHz.
    pub gpu_frequency_mhz: f64,
    /// The paper's GPU Load metric in `[0, 1]`.
    pub gpu_load: f64,
    /// Fraction of the tick all shader cores were busy.
    pub gpu_shaders_busy: f64,
    /// Fraction of the tick the GPU↔memory bus was busy.
    pub gpu_bus_busy: f64,
    /// L1 texture-cache misses this tick (millions).
    pub gpu_l1_texture_misses_m: f64,
    /// AIE utilization in `[0, 1]` (0 if the platform has no AIE).
    pub aie_utilization: f64,
    /// AIE frequency in MHz.
    pub aie_frequency_mhz: f64,
    /// The paper's AIE Load metric in `[0, 1]`.
    pub aie_load: f64,
    /// Total used system memory (OS baseline included), in MiB.
    pub memory_used_mib: f64,
    /// Fraction of system memory in use, in `[0, 1]`.
    pub memory_used_fraction: f64,
    /// Memory-bus bandwidth utilization in `[0, 1]`.
    pub memory_bandwidth_utilization: f64,
    /// Storage-device busy fraction in `[0, 1]`.
    pub storage_busy: f64,
    /// Storage read throughput delivered, in MB/s.
    pub storage_read_mbps: f64,
    /// Storage write throughput delivered, in MB/s.
    pub storage_write_mbps: f64,
}

impl TickSample {
    /// Mark this sample as lost: every counter field becomes NaN (the
    /// capture row is missing), while `time_s` and the cluster topology are
    /// preserved so the trace keeps its uniform tick grid. This is the hook
    /// the fault-injection layer in `mwc-profiler` uses to model dropped
    /// Snapdragon-Profiler rows.
    pub fn invalidate(&mut self) {
        for c in &mut self.clusters {
            c.utilization = f64::NAN;
            c.frequency_mhz = f64::NAN;
            c.load = f64::NAN;
            c.instructions = f64::NAN;
            c.cycles = f64::NAN;
        }
        self.instructions = f64::NAN;
        self.cycles = f64::NAN;
        self.cache_misses = f64::NAN;
        self.branches = f64::NAN;
        self.branch_misses = f64::NAN;
        self.dram_accesses = f64::NAN;
        self.gpu_utilization = f64::NAN;
        self.gpu_frequency_mhz = f64::NAN;
        self.gpu_load = f64::NAN;
        self.gpu_shaders_busy = f64::NAN;
        self.gpu_bus_busy = f64::NAN;
        self.gpu_l1_texture_misses_m = f64::NAN;
        self.aie_utilization = f64::NAN;
        self.aie_frequency_mhz = f64::NAN;
        self.aie_load = f64::NAN;
        self.memory_used_mib = f64::NAN;
        self.memory_used_fraction = f64::NAN;
        self.memory_bandwidth_utilization = f64::NAN;
        self.storage_busy = f64::NAN;
        self.storage_read_mbps = f64::NAN;
        self.storage_write_mbps = f64::NAN;
    }

    /// Whether this sample was lost (see [`TickSample::invalidate`]).
    pub fn is_dropped(&self) -> bool {
        self.instructions.is_nan()
    }
}

/// A complete counter trace for one benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Name of the workload that produced the trace.
    pub workload: String,
    /// Tick period in seconds.
    pub tick_seconds: f64,
    /// One sample per tick, in time order.
    pub samples: Vec<TickSample>,
}

impl Trace {
    /// Run duration in seconds.
    pub fn duration_seconds(&self) -> f64 {
        self.samples.len() as f64 * self.tick_seconds
    }

    /// Samples that were actually captured (dropped rows excluded).
    pub fn valid_samples(&self) -> impl Iterator<Item = &TickSample> {
        self.samples.iter().filter(|s| !s.is_dropped())
    }

    /// Number of dropped (lost) samples in the trace.
    pub fn dropped_samples(&self) -> usize {
        self.samples.iter().filter(|s| s.is_dropped()).count()
    }

    /// Fraction of ticks that were actually captured (1.0 for an empty or
    /// fully captured trace).
    pub fn completeness(&self) -> f64 {
        if self.samples.is_empty() {
            return 1.0;
        }
        1.0 - self.dropped_samples() as f64 / self.samples.len() as f64
    }

    /// Total dynamic instruction count of the run (dropped rows excluded;
    /// identical to a plain sum for a fully captured trace).
    pub fn total_instructions(&self) -> f64 {
        self.valid_samples().map(|s| s.instructions).sum()
    }

    /// Total active CPU cycles of the run (dropped rows excluded).
    pub fn total_cycles(&self) -> f64 {
        self.valid_samples().map(|s| s.cycles).sum()
    }

    /// Run-level IPC: instructions over active cycles (0 for an idle run).
    pub fn ipc(&self) -> f64 {
        let cycles = self.total_cycles();
        if cycles > 0.0 {
            self.total_instructions() / cycles
        } else {
            0.0
        }
    }

    /// Run-level all-level cache MPKI (0 for an idle run).
    pub fn cache_mpki(&self) -> f64 {
        let instr = self.total_instructions();
        if instr > 0.0 {
            self.valid_samples().map(|s| s.cache_misses).sum::<f64>() / instr * 1000.0
        } else {
            0.0
        }
    }

    /// Run-level branch MPKI (0 for an idle run).
    pub fn branch_mpki(&self) -> f64 {
        let instr = self.total_instructions();
        if instr > 0.0 {
            self.valid_samples().map(|s| s.branch_misses).sum::<f64>() / instr * 1000.0
        } else {
            0.0
        }
    }

    /// Mean of an arbitrary per-sample metric over the captured (finite)
    /// values; 0 for an empty or fully dropped trace.
    pub fn mean_of(&self, f: impl Fn(&TickSample) -> f64) -> f64 {
        let mut sum = 0.0;
        let mut n = 0usize;
        for v in self.samples.iter().map(&f).filter(|v| v.is_finite()) {
            sum += v;
            n += 1;
        }
        if n == 0 {
            return 0.0;
        }
        sum / n as f64
    }

    /// Maximum of an arbitrary per-sample metric (0 for an empty trace;
    /// NaN values from dropped samples are ignored).
    pub fn max_of(&self, f: impl Fn(&TickSample) -> f64) -> f64 {
        self.samples.iter().map(&f).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(instr: f64, cycles: f64) -> TickSample {
        TickSample {
            time_s: 0.0,
            clusters: Vec::new(),
            instructions: instr,
            cycles,
            cache_misses: instr / 100.0,
            branches: instr / 5.0,
            branch_misses: instr / 500.0,
            dram_accesses: 0.0,
            gpu_utilization: 0.5,
            gpu_frequency_mhz: 400.0,
            gpu_load: 0.25,
            gpu_shaders_busy: 0.4,
            gpu_bus_busy: 0.3,
            gpu_l1_texture_misses_m: 0.0,
            aie_utilization: 0.0,
            aie_frequency_mhz: 300.0,
            aie_load: 0.0,
            memory_used_mib: 2000.0,
            memory_used_fraction: 0.17,
            memory_bandwidth_utilization: 0.2,
            storage_busy: 0.0,
            storage_read_mbps: 0.0,
            storage_write_mbps: 0.0,
        }
    }

    fn trace(n: usize) -> Trace {
        Trace {
            workload: "t".into(),
            tick_seconds: 0.1,
            samples: (0..n).map(|_| sample(1000.0, 800.0)).collect(),
        }
    }

    #[test]
    fn duration_from_tick_count() {
        assert!((trace(50).duration_seconds() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn aggregates() {
        let t = trace(10);
        assert!((t.total_instructions() - 10_000.0).abs() < 1e-9);
        assert!((t.ipc() - 1.25).abs() < 1e-12);
        assert!((t.cache_mpki() - 10.0).abs() < 1e-9);
        assert!((t.branch_mpki() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_rates_are_zero() {
        let t = Trace {
            workload: "e".into(),
            tick_seconds: 0.1,
            samples: Vec::new(),
        };
        assert_eq!(t.ipc(), 0.0);
        assert_eq!(t.cache_mpki(), 0.0);
        assert_eq!(t.mean_of(|s| s.gpu_load), 0.0);
    }

    #[test]
    fn invalidated_samples_are_excluded_from_aggregates() {
        let mut t = trace(10);
        let clean_instructions = t.total_instructions();
        let clean_ipc = t.ipc();
        let clean_mpki = t.cache_mpki();
        t.samples[3].invalidate();
        t.samples[7].invalidate();
        assert!(t.samples[3].is_dropped());
        assert_eq!(t.dropped_samples(), 2);
        assert!((t.completeness() - 0.8).abs() < 1e-12);
        // Aggregates stay finite and rates are unchanged: the remaining
        // samples are identical, so per-instruction rates and IPC hold.
        assert!((t.total_instructions() - clean_instructions * 0.8).abs() < 1e-6);
        assert!((t.ipc() - clean_ipc).abs() < 1e-12);
        assert!((t.cache_mpki() - clean_mpki).abs() < 1e-9);
        assert!(t.mean_of(|s| s.gpu_load).is_finite());
        assert!(t.max_of(|s| s.gpu_load).is_finite());
        // Duration counts wall-clock ticks, including lost ones.
        assert!((t.duration_seconds() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fully_dropped_trace_reports_zero_rates() {
        let mut t = trace(4);
        for s in &mut t.samples {
            s.invalidate();
        }
        assert_eq!(t.completeness(), 0.0);
        assert_eq!(t.total_instructions(), 0.0);
        assert_eq!(t.ipc(), 0.0);
        assert_eq!(t.mean_of(|s| s.instructions), 0.0);
    }

    #[test]
    fn mean_and_max_of() {
        let mut t = trace(2);
        t.samples[0].gpu_load = 0.2;
        t.samples[1].gpu_load = 0.6;
        assert!((t.mean_of(|s| s.gpu_load) - 0.4).abs() < 1e-12);
        assert!((t.max_of(|s| s.gpu_load) - 0.6).abs() < 1e-12);
    }
}
