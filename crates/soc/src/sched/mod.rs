//! Energy-aware (EAS-style) thread placement over heterogeneous clusters.
//!
//! Android's scheduler places tasks to minimize energy while meeting
//! performance demand: light and medium background work packs onto the
//! little cores, a demanding foreground thread is promoted to the prime
//! core, and only genuinely parallel workloads spill onto the mid cluster.
//! This policy is what produces the paper's heterogeneity findings:
//!
//! * Observation #7 — the big core sees high load more often than the mids
//!   (single hot threads are promoted straight to it);
//! * Observation #8 — GPU tests, whose CPU side is light, run entirely on
//!   the energy-efficient little cores;
//! * Observation #9 — only explicitly multi-core workloads load all three
//!   clusters concurrently.

use crate::config::{ClusterKind, SocConfig};
use crate::cpu::{CpuDemand, ThreadDemand};

/// Intensity at or above which a thread is considered "heavy" and promoted
/// to the biggest available core.
pub const HEAVY_THRESHOLD: f64 = 0.70;

/// Intensity below which a thread is "light" and always packed onto the
/// little cluster.
pub const LIGHT_THRESHOLD: f64 = 0.30;

/// The per-cluster thread assignment produced by the scheduler, indexed
/// like `SocConfig::clusters`.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    /// `assignments[i]` holds the threads placed on `clusters[i]`.
    pub assignments: Vec<Vec<ThreadDemand>>,
}

impl Placement {
    /// Threads assigned to the cluster of the given kind (empty if the
    /// platform has no such cluster).
    pub fn for_kind<'a>(&'a self, soc: &SocConfig, kind: ClusterKind) -> &'a [ThreadDemand] {
        soc.clusters
            .iter()
            .position(|c| c.kind == kind)
            .map(|i| self.assignments[i].as_slice())
            .unwrap_or(&[])
    }

    /// Total number of placed threads.
    pub fn thread_count(&self) -> usize {
        self.assignments.iter().map(Vec::len).sum()
    }
}

/// Thread-placement policy. The paper's platform runs Android's
/// energy-aware scheduler; the alternatives support design-space
/// ablations (see the `ablation` binary of `mwc-bench`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PlacementPolicy {
    /// Android EAS behaviour: light/medium work packs on the littles,
    /// heavy threads are promoted big-first (default).
    #[default]
    EnergyAware,
    /// Race-to-idle: every thread prefers the fastest free core
    /// (big → mid → little), regardless of intensity.
    PerformanceFirst,
    /// Strict packing: everything goes to the little cluster and
    /// time-shares there; big/mid stay dark.
    LittleOnly,
}

impl PlacementPolicy {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::EnergyAware => "energy-aware",
            PlacementPolicy::PerformanceFirst => "performance-first",
            PlacementPolicy::LittleOnly => "little-only",
        }
    }
}

/// Scheduler over a fixed cluster topology.
#[derive(Debug, Clone)]
pub struct Scheduler {
    /// (kind, cores) per cluster, in `SocConfig::clusters` order.
    clusters: Vec<(ClusterKind, usize)>,
    policy: PlacementPolicy,
}

impl Scheduler {
    /// Build an energy-aware scheduler for the given platform.
    pub fn new(soc: &SocConfig) -> Self {
        Scheduler::with_policy(soc, PlacementPolicy::EnergyAware)
    }

    /// Build a scheduler with an explicit placement policy.
    pub fn with_policy(soc: &SocConfig, policy: PlacementPolicy) -> Self {
        Scheduler {
            clusters: soc.clusters.iter().map(|c| (c.kind, c.cores)).collect(),
            policy,
        }
    }

    /// The active placement policy.
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    fn index_of(&self, kind: ClusterKind) -> Option<usize> {
        self.clusters.iter().position(|&(k, _)| k == kind)
    }

    /// Place the runnable threads onto clusters for one tick.
    ///
    /// Placement is deterministic: threads are considered in descending
    /// intensity order; a cluster has one slot per core, and when every
    /// preferred cluster is full the thread time-shares on the last
    /// preference (the cluster model handles oversubscription).
    pub fn place(&self, demand: &CpuDemand) -> Placement {
        let mut assignments: Vec<Vec<ThreadDemand>> = vec![Vec::new(); self.clusters.len()];
        if demand.threads.is_empty() {
            // Nothing runnable: the full algorithm below would produce the
            // same all-empty placement; skip its allocations on the idle
            // path the event engine leans on.
            return Placement { assignments };
        }
        let mut free: Vec<usize> = self.clusters.iter().map(|&(_, cores)| cores).collect();

        let mut threads: Vec<&ThreadDemand> = demand
            .threads
            .iter()
            .filter(|t| t.intensity > 0.0)
            .collect();
        threads.sort_by(|a, b| b.intensity.total_cmp(&a.intensity));

        for thread in threads {
            let preference: &[ClusterKind] = match self.policy {
                PlacementPolicy::EnergyAware => {
                    if thread.intensity >= HEAVY_THRESHOLD {
                        &[ClusterKind::Big, ClusterKind::Mid, ClusterKind::Little]
                    } else if thread.intensity >= LIGHT_THRESHOLD {
                        &[ClusterKind::Little, ClusterKind::Mid, ClusterKind::Big]
                    } else {
                        &[ClusterKind::Little]
                    }
                }
                PlacementPolicy::PerformanceFirst => {
                    &[ClusterKind::Big, ClusterKind::Mid, ClusterKind::Little]
                }
                PlacementPolicy::LittleOnly => &[ClusterKind::Little],
            };

            let mut chosen = None;
            for &kind in preference {
                if let Some(i) = self.index_of(kind) {
                    if free[i] > 0 {
                        chosen = Some(i);
                        break;
                    }
                }
            }
            // Everything full (or the preferred kinds do not exist on this
            // platform): time-share on the last existing preference, or on
            // cluster 0 as the final fallback.
            let idx = chosen
                .or_else(|| preference.iter().rev().find_map(|&k| self.index_of(k)))
                .unwrap_or(0);
            if free[idx] > 0 {
                free[idx] -= 1;
            }
            assignments[idx].push(thread.clone());
        }

        Placement { assignments }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched() -> (Scheduler, SocConfig) {
        let soc = SocConfig::snapdragon_888();
        (Scheduler::new(&soc), soc)
    }

    #[test]
    fn heavy_thread_goes_to_big() {
        let (s, soc) = sched();
        let p = s.place(&CpuDemand::single_thread(0.95));
        assert_eq!(p.for_kind(&soc, ClusterKind::Big).len(), 1);
        assert!(p.for_kind(&soc, ClusterKind::Mid).is_empty());
        assert!(p.for_kind(&soc, ClusterKind::Little).is_empty());
    }

    #[test]
    fn light_threads_pack_on_little() {
        let (s, soc) = sched();
        let p = s.place(&CpuDemand::multi_thread(6, 0.2));
        assert_eq!(p.for_kind(&soc, ClusterKind::Little).len(), 6);
        assert!(p.for_kind(&soc, ClusterKind::Big).is_empty());
        assert!(p.for_kind(&soc, ClusterKind::Mid).is_empty());
    }

    #[test]
    fn medium_threads_spill_little_then_mid() {
        let (s, soc) = sched();
        let p = s.place(&CpuDemand::multi_thread(6, 0.5));
        assert_eq!(p.for_kind(&soc, ClusterKind::Little).len(), 4);
        assert_eq!(p.for_kind(&soc, ClusterKind::Mid).len(), 2);
    }

    #[test]
    fn multicore_burst_loads_all_clusters() {
        let (s, soc) = sched();
        let p = s.place(&CpuDemand::multi_thread(8, 0.9));
        assert_eq!(p.for_kind(&soc, ClusterKind::Big).len(), 1);
        assert_eq!(p.for_kind(&soc, ClusterKind::Mid).len(), 3);
        assert_eq!(p.for_kind(&soc, ClusterKind::Little).len(), 4);
    }

    #[test]
    fn oversubscribed_heavy_threads_timeshare_on_little() {
        let (s, soc) = sched();
        let p = s.place(&CpuDemand::multi_thread(12, 0.9));
        assert_eq!(p.thread_count(), 12);
        assert_eq!(p.for_kind(&soc, ClusterKind::Little).len(), 8);
    }

    #[test]
    fn zero_intensity_threads_are_dropped() {
        let (s, _) = sched();
        let p = s.place(&CpuDemand::multi_thread(4, 0.0));
        assert_eq!(p.thread_count(), 0);
    }

    #[test]
    fn heaviest_thread_wins_the_big_core() {
        let (s, soc) = sched();
        let mut demand = CpuDemand::default();
        demand.threads.push(ThreadDemand::new(0.8));
        demand.threads.push(ThreadDemand::new(0.99));
        let p = s.place(&demand);
        let big = p.for_kind(&soc, ClusterKind::Big);
        assert_eq!(big.len(), 1);
        assert!((big[0].intensity - 0.99).abs() < 1e-12);
        // The other heavy thread spills to mid.
        assert_eq!(p.for_kind(&soc, ClusterKind::Mid).len(), 1);
    }

    #[test]
    fn single_cluster_platform_takes_everything() {
        let soc = SocConfig::builder("mono")
            .cluster(crate::config::ClusterConfig {
                model: "OnlyCore".into(),
                kind: ClusterKind::Little,
                cores: 2,
                max_freq_mhz: 2000.0,
                min_freq_mhz: 500.0,
                l1i_kib: 32,
                l1d_kib: 32,
                l2_kib: 256,
                issue_width: 2.0,
                branch_predictor_quality: 0.9,
            })
            .build()
            .unwrap();
        let s = Scheduler::new(&soc);
        let p = s.place(&CpuDemand::multi_thread(5, 0.9));
        assert_eq!(p.assignments[0].len(), 5);
    }

    #[test]
    fn performance_first_races_to_the_big_core() {
        let soc = SocConfig::snapdragon_888();
        let s = Scheduler::with_policy(&soc, PlacementPolicy::PerformanceFirst);
        let p = s.place(&CpuDemand::multi_thread(2, 0.2));
        assert_eq!(p.for_kind(&soc, ClusterKind::Big).len(), 1);
        assert_eq!(p.for_kind(&soc, ClusterKind::Mid).len(), 1);
        assert!(p.for_kind(&soc, ClusterKind::Little).is_empty());
    }

    #[test]
    fn little_only_keeps_big_and_mid_dark() {
        let soc = SocConfig::snapdragon_888();
        let s = Scheduler::with_policy(&soc, PlacementPolicy::LittleOnly);
        let p = s.place(&CpuDemand::multi_thread(8, 0.95));
        assert_eq!(p.for_kind(&soc, ClusterKind::Little).len(), 8);
        assert!(p.for_kind(&soc, ClusterKind::Big).is_empty());
        assert!(p.for_kind(&soc, ClusterKind::Mid).is_empty());
        assert_eq!(PlacementPolicy::LittleOnly.name(), "little-only");
    }

    #[test]
    fn placement_is_deterministic() {
        let (s, _) = sched();
        let d = CpuDemand::multi_thread(7, 0.6);
        assert_eq!(s.place(&d), s.place(&d));
    }

    #[test]
    fn empty_demand_early_out_matches_full_path() {
        let (s, _) = sched();
        let empty = s.place(&CpuDemand::default());
        assert_eq!(empty.assignments.len(), s.clusters.len());
        assert_eq!(empty.thread_count(), 0);
        // Identical to what the full algorithm produces for an equivalent
        // no-runnable-threads demand (all intensities zero).
        let zeros = s.place(&CpuDemand::multi_thread(3, 0.0));
        assert_eq!(empty, zeros);
    }
}
