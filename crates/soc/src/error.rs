//! Error types for SoC configuration and simulation.

use std::error::Error;
use std::fmt;

/// Errors produced while validating a SoC configuration or running a
/// simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SocError {
    /// A configuration field is invalid (empty cluster list, zero-sized
    /// cache, inverted frequency range, ...). The payload describes the
    /// offending field.
    InvalidConfig(String),
    /// A workload declared a non-positive duration.
    InvalidDuration(String),
    /// A demand referenced a component the configuration does not have
    /// (e.g. AIE demand on a SoC built without an AIE).
    MissingComponent(String),
}

impl fmt::Display for SocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SocError::InvalidConfig(what) => write!(f, "invalid SoC configuration: {what}"),
            SocError::InvalidDuration(what) => write!(f, "invalid workload duration: {what}"),
            SocError::MissingComponent(what) => write!(f, "missing SoC component: {what}"),
        }
    }
}

impl Error for SocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_field() {
        let err = SocError::InvalidConfig("cluster list is empty".to_owned());
        assert!(err.to_string().contains("cluster list is empty"));
        let err = SocError::InvalidDuration("-1".to_owned());
        assert!(err.to_string().contains("duration"));
        let err = SocError::MissingComponent("aie".to_owned());
        assert!(err.to_string().contains("aie"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: Error>(_e: E) {}
        takes_error(SocError::InvalidConfig(String::new()));
    }
}
