//! GPU modelling: graphics APIs, render targets, shader array and the
//! memory bus.
//!
//! The model captures the GPU effects the paper reports:
//!
//! * **API efficiency** — OpenGL ES benchmarks show ~9.26% higher GPU load
//!   than equivalent Vulkan ones (Observation #2);
//! * **On-screen vs off-screen** — on-screen rendering is vsync-paced and
//!   loses time to composition, so off-screen variants sustain higher load;
//!   the loss is larger for lighter scenes (paper: +14.5% for High-Level,
//!   +62.85% for Low-Level off-screen tests);
//! * **Texture pressure** — resident textures occupy shared L3/SLC capacity
//!   and memory bandwidth, degrading CPU IPC (the paper's cache-contention
//!   explanation for low graphics-benchmark IPC).

mod api;

pub use api::GraphicsApi;

use crate::config::GpuConfig;
use crate::freq::Governor;

/// Render resolution of a graphics test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// 1920×1080 (the attached display's native resolution).
    FullHd,
    /// 2560×1440 ("2K QHD"; used by GFXBench Manhattan off-screen).
    Qhd,
    /// 3840×2160 ("4K"; used by GFXBench Aztec Ruins off-screen).
    Uhd4K,
}

impl Resolution {
    /// Work multiplier relative to Full HD (sub-linear in pixel count:
    /// vertex and driver work do not scale with resolution).
    pub fn work_scale(self) -> f64 {
        match self {
            Resolution::FullHd => 1.0,
            Resolution::Qhd => 1.33,
            Resolution::Uhd4K => 1.80,
        }
    }

    /// Pixel count at this resolution.
    pub fn pixels(self) -> u64 {
        match self {
            Resolution::FullHd => 1920 * 1080,
            Resolution::Qhd => 2560 * 1440,
            Resolution::Uhd4K => 3840 * 2160,
        }
    }
}

/// Whether a test renders to the display or to an off-screen buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RenderTarget {
    /// Drawing goes to the display: vsync-paced, pays composition overhead.
    OnScreen,
    /// Drawing stays in memory: the GPU runs flat out.
    OffScreen,
}

/// GPU work demanded for one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuDemand {
    /// Graphics API the workload uses.
    pub api: GraphicsApi,
    /// Render resolution.
    pub resolution: Resolution,
    /// Render target (on-screen / off-screen).
    pub target: RenderTarget,
    /// Scene complexity in `[0, 1]`: the utilization the scene would demand
    /// rendered off-screen with Vulkan at Full HD.
    pub intensity: f64,
    /// Fraction of GPU work spent in shader ALUs (vs fixed-function).
    pub shader_fraction: f64,
    /// Fraction of GPU work that streams through the memory bus.
    pub bus_fraction: f64,
    /// Resident texture + render-target footprint in MiB.
    pub texture_mib: f64,
}

impl GpuDemand {
    /// A balanced on-screen Full-HD OpenGL scene at the given intensity.
    pub fn scene(intensity: f64) -> Self {
        GpuDemand {
            api: GraphicsApi::OpenGlEs,
            resolution: Resolution::FullHd,
            target: RenderTarget::OnScreen,
            intensity: intensity.clamp(0.0, 1.0),
            shader_fraction: 0.7,
            bus_fraction: 0.5,
            texture_mib: 600.0,
        }
    }

    /// A GPGPU compute dispatch (Geekbench-Compute-style): off-screen,
    /// shader-dominated, API-agnostic scheduling cost.
    pub fn compute(intensity: f64) -> Self {
        GpuDemand {
            api: GraphicsApi::Vulkan,
            resolution: Resolution::FullHd,
            target: RenderTarget::OffScreen,
            intensity: intensity.clamp(0.0, 1.0),
            shader_fraction: 0.92,
            bus_fraction: 0.35,
            texture_mib: 350.0,
        }
    }
}

/// Per-tick output of the GPU model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuTickResult {
    /// GPU utilization in `[0, 1]`.
    pub utilization: f64,
    /// GPU frequency in MHz.
    pub frequency_mhz: f64,
    /// Fraction of the tick during which *all* shader cores were busy.
    pub shaders_busy: f64,
    /// Fraction of the tick during which the GPU↔memory bus was busy.
    pub bus_busy: f64,
    /// Texture footprint resident in the shared caches, in KiB (drives
    /// CPU-side contention).
    pub cache_residency_kib: f64,
    /// Texture + framebuffer memory resident in DRAM, in MiB.
    pub memory_mib: f64,
    /// L1 texture-cache misses per tick (millions).
    pub l1_texture_misses_m: f64,
}

impl GpuTickResult {
    /// An idle GPU tick at the floor frequency.
    pub fn idle(frequency_mhz: f64) -> Self {
        GpuTickResult {
            utilization: 0.0,
            frequency_mhz,
            shaders_busy: 0.0,
            bus_busy: 0.0,
            cache_residency_kib: 0.0,
            memory_mib: 0.0,
            l1_texture_misses_m: 0.0,
        }
    }

    /// The paper's GPU Load metric: frequency × utilization, normalized to
    /// `[0, 1]` by the maximum frequency.
    pub fn load(&self, max_freq_mhz: f64) -> f64 {
        if max_freq_mhz <= 0.0 {
            return 0.0;
        }
        (self.frequency_mhz * self.utilization / max_freq_mhz).clamp(0.0, 1.0)
    }
}

/// On-screen rendering loses part of the tick to vsync pacing and
/// composition; lighter scenes idle longer between frames. The utilization
/// gain compounds with the DVFS frequency response into the *load* gain
/// the paper reports: ≈ +14.5% for heavy (High-Level) scenes and ≈ +62.9%
/// for lighter (Low-Level) scenes when run off-screen.
fn onscreen_sync_loss(intensity: f64) -> f64 {
    (0.04 + 0.30 * (1.0 - intensity)).clamp(0.0, 0.8)
}

/// Runtime model of the GPU.
#[derive(Debug, Clone)]
pub struct Gpu {
    config: GpuConfig,
    governor: Governor,
}

impl Gpu {
    /// Build the runtime model from a validated configuration.
    pub fn new(config: GpuConfig) -> Self {
        let governor = Governor::for_range(config.min_freq_mhz, config.max_freq_mhz);
        Gpu { config, governor }
    }

    /// The GPU's static configuration.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Execute the demanded GPU work for one tick.
    pub fn tick(&mut self, demand: Option<&GpuDemand>, _tick_seconds: f64) -> GpuTickResult {
        let Some(demand) = demand else {
            let f = self.governor.tick(0.0);
            return GpuTickResult::idle(f);
        };

        let base = demand.intensity.clamp(0.0, 1.0);
        let scaled = base * demand.api.load_factor() * demand.resolution.work_scale();
        let utilization = match demand.target {
            RenderTarget::OffScreen => scaled.min(1.0),
            RenderTarget::OnScreen => (scaled * (1.0 - onscreen_sync_loss(base))).min(1.0),
        };
        let frequency_mhz = self.governor.tick(utilization);

        let shaders_busy = (utilization * demand.shader_fraction.clamp(0.0, 1.0)).min(1.0);
        // Bus activity: explicit streaming traffic plus texture fetch
        // traffic proportional to the resident footprint.
        let texture_pressure = (demand.texture_mib / 1024.0).min(1.0);
        let bus_busy = (utilization * demand.bus_fraction.clamp(0.0, 1.0)
            + 0.25 * texture_pressure * utilization)
            .min(1.0);

        // Fraction of textures hot enough to squat in the shared caches.
        let cache_residency_kib =
            (demand.texture_mib * 1024.0 * 0.35 * utilization).min(7.0 * 1024.0 * 0.9);
        let memory_mib = demand.texture_mib * (0.6 + 0.4 * utilization);
        let l1_texture_misses_m =
            utilization * texture_pressure * self.config.shader_cores as f64 * 2.0;

        GpuTickResult {
            utilization,
            frequency_mhz,
            shaders_busy,
            bus_busy,
            cache_residency_kib,
            memory_mib,
            l1_texture_misses_m,
        }
    }

    /// Whether an idle tick (no demand) would leave the GPU bit-identical:
    /// the model's only evolving state is its DVFS governor, so quiescence
    /// is the governor's zero-utilization fixpoint. The event engine uses
    /// this to skip the GPU while it is idle and fully ramped down.
    pub fn is_quiescent(&self) -> bool {
        self.governor.is_settled_at(0.0)
    }

    /// Reset DVFS state between benchmark runs.
    pub fn reset(&mut self) {
        self.governor.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SocConfig;

    fn gpu() -> Gpu {
        Gpu::new(SocConfig::snapdragon_888().gpu.unwrap())
    }

    fn run(gpu: &mut Gpu, demand: &GpuDemand, ticks: usize) -> GpuTickResult {
        let mut last = GpuTickResult::idle(0.0);
        for _ in 0..ticks {
            last = gpu.tick(Some(demand), 0.1);
        }
        last
    }

    #[test]
    fn idle_gpu_has_zero_utilization() {
        let mut g = gpu();
        let r = g.tick(None, 0.1);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.shaders_busy, 0.0);
    }

    #[test]
    fn opengl_loads_higher_than_vulkan() {
        let max_freq = gpu().config().max_freq_mhz;
        let mut g1 = gpu();
        let mut g2 = gpu();
        let mut gl = GpuDemand::scene(0.7);
        gl.api = GraphicsApi::OpenGlEs;
        let mut vk = gl;
        vk.api = GraphicsApi::Vulkan;
        let r_gl = run(&mut g1, &gl, 30);
        let r_vk = run(&mut g2, &vk, 30);
        // Paper: +9.26% GPU *load* for OpenGL (Observation #2); utilization
        // and the governor's frequency response both contribute.
        let load_ratio = r_gl.load(max_freq) / r_vk.load(max_freq);
        assert!(
            load_ratio > 1.03 && load_ratio < 1.20,
            "load ratio {load_ratio}"
        );
    }

    #[test]
    fn offscreen_gains_match_paper_shape() {
        let max_freq = gpu().config().max_freq_mhz;
        // Heavy (High-Level-like) scene: ≈ +14.5% load off-screen.
        let mut on = GpuDemand::scene(0.88);
        on.api = GraphicsApi::Vulkan;
        let mut off = on;
        off.target = RenderTarget::OffScreen;
        let r_on = run(&mut gpu(), &on, 30);
        let r_off = run(&mut gpu(), &off, 30);
        let heavy_gain = r_off.load(max_freq) / r_on.load(max_freq) - 1.0;
        assert!(
            (0.03..=0.30).contains(&heavy_gain),
            "heavy gain {heavy_gain}"
        );

        // Light (Low-Level-like) scene: ≈ +62.85% load off-screen.
        let mut on = GpuDemand::scene(0.45);
        on.api = GraphicsApi::Vulkan;
        let mut off = on;
        off.target = RenderTarget::OffScreen;
        let r_on = run(&mut gpu(), &on, 30);
        let r_off = run(&mut gpu(), &off, 30);
        let light_gain = r_off.load(max_freq) / r_on.load(max_freq) - 1.0;
        assert!(
            (0.30..=0.95).contains(&light_gain),
            "light gain {light_gain}"
        );
        assert!(light_gain > heavy_gain, "{light_gain} vs {heavy_gain}");
    }

    #[test]
    fn higher_resolution_raises_load() {
        let mut d = GpuDemand::scene(0.5);
        d.target = RenderTarget::OffScreen;
        let fhd = run(&mut gpu(), &d, 30);
        d.resolution = Resolution::Uhd4K;
        let uhd = run(&mut gpu(), &d, 30);
        assert!(uhd.utilization > fhd.utilization);
    }

    #[test]
    fn utilization_bounded() {
        let mut d = GpuDemand::scene(1.0);
        d.resolution = Resolution::Uhd4K;
        d.target = RenderTarget::OffScreen;
        let r = run(&mut gpu(), &d, 30);
        assert!(r.utilization <= 1.0);
        assert!(r.bus_busy <= 1.0);
        assert!(r.shaders_busy <= 1.0);
    }

    #[test]
    fn textures_create_cache_residency_and_memory() {
        let mut d = GpuDemand::scene(0.8);
        d.texture_mib = 1200.0;
        let r = run(&mut gpu(), &d, 30);
        assert!(r.cache_residency_kib > 100.0);
        assert!(r.memory_mib > 600.0);
        assert!(r.l1_texture_misses_m > 0.0);
    }

    #[test]
    fn dvfs_follows_load() {
        let mut g = gpu();
        let d = GpuDemand::scene(0.9);
        let first = g.tick(Some(&d), 0.1);
        let last = run(&mut g, &d, 40);
        assert!(last.frequency_mhz > first.frequency_mhz);
    }

    #[test]
    fn load_metric_normalized() {
        let r = GpuTickResult {
            utilization: 0.5,
            frequency_mhz: 420.0,
            shaders_busy: 0.0,
            bus_busy: 0.0,
            cache_residency_kib: 0.0,
            memory_mib: 0.0,
            l1_texture_misses_m: 0.0,
        };
        assert!((r.load(840.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn quiescence_tracks_the_idle_ramp() {
        let mut g = gpu();
        assert!(g.is_quiescent(), "fresh GPU rests at the floor OPP");
        g.tick(Some(&GpuDemand::scene(0.9)), 0.1);
        assert!(!g.is_quiescent(), "ramping after load");
        for _ in 0..200 {
            g.tick(None, 0.1);
        }
        assert!(g.is_quiescent());
        let r1 = g.tick(None, 0.1);
        let r2 = g.tick(None, 0.1);
        assert_eq!(r1, r2, "idle ticks at the fixpoint are no-ops");
    }

    #[test]
    fn resolution_scales() {
        assert!(Resolution::Uhd4K.work_scale() > Resolution::Qhd.work_scale());
        assert!(Resolution::Qhd.work_scale() > Resolution::FullHd.work_scale());
        assert_eq!(Resolution::FullHd.pixels(), 2_073_600);
    }
}
