//! Graphics API front-end models.

/// The graphics API a workload renders through.
///
/// The paper observes that GFXBench tests using OpenGL ES exhibit 9.26%
/// higher GPU load than the equivalent Vulkan tests, because Vulkan's
/// thinner driver and explicit command buffers waste fewer GPU cycles
/// (Observation #2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphicsApi {
    /// OpenGL ES: higher driver overhead, implicit state validation.
    OpenGlEs,
    /// Vulkan: explicit, lower-overhead API.
    Vulkan,
}

impl GraphicsApi {
    /// GPU-*utilization* multiplier for rendering the same scene through
    /// this API, relative to Vulkan. The paper's GPU Load metric is
    /// frequency × utilization and the governor raises frequency with
    /// utilization, so the measured *load* gap compounds to roughly the
    /// square of this factor — calibrated so the load gap lands at the
    /// paper's measured 9.26%.
    pub fn load_factor(self) -> f64 {
        match self {
            GraphicsApi::OpenGlEs => 1.048,
            GraphicsApi::Vulkan => 1.0,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            GraphicsApi::OpenGlEs => "OpenGL ES",
            GraphicsApi::Vulkan => "Vulkan",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opengl_is_heavier_and_load_gap_lands_near_paper() {
        let util_gap = GraphicsApi::OpenGlEs.load_factor() / GraphicsApi::Vulkan.load_factor();
        assert!(util_gap > 1.0);
        // Squared through the DVFS response, the load gap approximates the
        // paper's +9.26%.
        assert!((util_gap * util_gap - 1.0926).abs() < 0.02);
    }

    #[test]
    fn names() {
        assert_eq!(GraphicsApi::Vulkan.name(), "Vulkan");
        assert_eq!(GraphicsApi::OpenGlEs.name(), "OpenGL ES");
    }
}
