//! AI-engine (AIE) model: a Hexagon-class DSP plus tensor accelerator.
//!
//! The AIE serves compute-intensive multimedia work (video, audio, image
//! processing), neural-network inference and classic DSP kernels. The model
//! exposes the paper-relevant behaviour:
//!
//! * per-kernel load levels (NN inference loads the engine far more than an
//!   FFT post-processing pass — Observation #5 finds an average AIE load of
//!   just 5% across all benchmarks);
//! * a video-codec support matrix: the Snapdragon 888 pipeline accelerates
//!   H.264/H.265/VP9 but not AV1, whose decoding therefore falls back to
//!   the CPU with a considerable CPU-load increase (§V-B).

use crate::config::AieConfig;
use crate::freq::Governor;

/// Video codecs appearing in the Antutu UX video tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Codec {
    /// H.264 / AVC.
    H264,
    /// H.265 / HEVC.
    H265,
    /// Google VP9.
    Vp9,
    /// AOMedia AV1 (no fixed-function support on this SoC generation).
    Av1,
}

impl Codec {
    /// All codecs used by the Antutu UX video tests.
    pub const ALL: [Codec; 4] = [Codec::H264, Codec::H265, Codec::Vp9, Codec::Av1];

    /// Relative software-decode cost on the CPU (H.264 = 1.0). AV1 is by
    /// far the most expensive to decode in software.
    pub fn sw_decode_cost(self) -> f64 {
        match self {
            Codec::H264 => 1.0,
            Codec::H265 => 1.6,
            Codec::Vp9 => 1.5,
            Codec::Av1 => 2.6,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Codec::H264 => "H264",
            Codec::H265 => "H265",
            Codec::Vp9 => "VP9",
            Codec::Av1 => "AV1",
        }
    }
}

/// DSP / NN kernels the AIE can execute.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DspKernel {
    /// Fast Fourier transform (3DMark Wild Life post-processing,
    /// Antutu CPU math section).
    Fft,
    /// Low-precision GEMM (NN building block).
    GemmLowPrecision,
    /// PNG decode assist (Antutu CPU).
    PngDecode,
    /// Hardware video decode of the given codec (Antutu UX).
    VideoDecode(Codec),
    /// Hardware video encode of the given codec (PCMark Work video editing).
    VideoEncode(Codec),
    /// CNN image classification (Aitutu).
    ImageClassification,
    /// CNN object detection (Aitutu).
    ObjectDetection,
    /// NN super-resolution (Aitutu).
    SuperResolution,
    /// PSNR/MSE frame comparison (GFXBench Special render-quality tests).
    Psnr,
    /// Display-pipeline assist: scroll / webview rendering (Antutu UX).
    DisplayAssist,
}

impl DspKernel {
    /// Baseline AIE utilization the kernel demands at unit intensity.
    pub fn base_load(self) -> f64 {
        match self {
            DspKernel::Fft => 0.30,
            DspKernel::GemmLowPrecision => 0.45,
            DspKernel::PngDecode => 0.22,
            DspKernel::VideoDecode(_) => 0.48,
            DspKernel::VideoEncode(_) => 0.55,
            DspKernel::ImageClassification => 0.62,
            DspKernel::ObjectDetection => 0.70,
            DspKernel::SuperResolution => 0.78,
            DspKernel::Psnr => 0.85,
            DspKernel::DisplayAssist => 0.50,
        }
    }

    /// The codec involved, for video kernels.
    pub fn codec(self) -> Option<Codec> {
        match self {
            DspKernel::VideoDecode(c) | DspKernel::VideoEncode(c) => Some(c),
            _ => None,
        }
    }
}

/// AIE work demanded for one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AieDemand {
    /// The kernel being offloaded.
    pub kernel: DspKernel,
    /// Intensity scale in `[0, 1]` applied to the kernel's base load.
    pub intensity: f64,
}

impl AieDemand {
    /// Demand the given kernel at the given intensity.
    pub fn new(kernel: DspKernel, intensity: f64) -> Self {
        AieDemand {
            kernel,
            intensity: intensity.clamp(0.0, 1.0),
        }
    }
}

/// Per-tick output of the AIE model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AieTickResult {
    /// AIE utilization in `[0, 1]`.
    pub utilization: f64,
    /// AIE frequency in MHz.
    pub frequency_mhz: f64,
    /// Demand that the AIE could *not* serve (unsupported codec) and that
    /// the engine must fall back to the CPU, expressed as equivalent CPU
    /// thread intensity.
    pub cpu_fallback_intensity: f64,
}

impl AieTickResult {
    /// An idle AIE tick at the floor frequency.
    pub fn idle(frequency_mhz: f64) -> Self {
        AieTickResult {
            utilization: 0.0,
            frequency_mhz,
            cpu_fallback_intensity: 0.0,
        }
    }

    /// The paper's AIE Load metric: frequency × utilization, normalized to
    /// `[0, 1]` by the maximum frequency.
    pub fn load(&self, max_freq_mhz: f64) -> f64 {
        if max_freq_mhz <= 0.0 {
            return 0.0;
        }
        (self.frequency_mhz * self.utilization / max_freq_mhz).clamp(0.0, 1.0)
    }
}

/// Runtime model of the AI engine.
#[derive(Debug, Clone)]
pub struct Aie {
    config: AieConfig,
    governor: Governor,
}

impl Aie {
    /// Build the runtime model from a validated configuration.
    pub fn new(config: AieConfig) -> Self {
        let governor = Governor::for_range(config.min_freq_mhz, config.max_freq_mhz);
        Aie { config, governor }
    }

    /// The AIE's static configuration.
    pub fn config(&self) -> &AieConfig {
        &self.config
    }

    /// Whether the fixed-function pipeline accelerates the given codec.
    pub fn supports(&self, codec: Codec) -> bool {
        self.config.supported_codecs.contains(&codec)
    }

    /// Execute the demanded kernel for one tick. Unsupported video codecs
    /// are rejected: the result carries the equivalent CPU intensity the
    /// engine must schedule as a software fallback.
    pub fn tick(&mut self, demand: Option<&AieDemand>, _tick_seconds: f64) -> AieTickResult {
        let Some(demand) = demand else {
            let f = self.governor.tick(0.0);
            return AieTickResult::idle(f);
        };

        if let Some(codec) = demand.kernel.codec() {
            if !self.supports(codec) {
                let f = self.governor.tick(0.0);
                return AieTickResult {
                    utilization: 0.0,
                    frequency_mhz: f,
                    cpu_fallback_intensity: (demand.intensity
                        * demand.kernel.base_load()
                        * codec.sw_decode_cost())
                    .min(1.0),
                };
            }
        }

        let utilization = (demand.kernel.base_load() * demand.intensity).min(1.0);
        let frequency_mhz = self.governor.tick(utilization);
        AieTickResult {
            utilization,
            frequency_mhz,
            cpu_fallback_intensity: 0.0,
        }
    }

    /// Whether an idle tick (no demand) would leave the AIE bit-identical:
    /// the model's only evolving state is its DVFS governor, so quiescence
    /// is the governor's zero-utilization fixpoint. The event engine uses
    /// this to skip the AIE while it is idle and fully ramped down.
    pub fn is_quiescent(&self) -> bool {
        self.governor.is_settled_at(0.0)
    }

    /// Reset DVFS state between benchmark runs.
    pub fn reset(&mut self) {
        self.governor.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SocConfig;

    fn aie() -> Aie {
        Aie::new(SocConfig::snapdragon_888().aie.unwrap())
    }

    #[test]
    fn idle_aie() {
        let mut a = aie();
        let r = a.tick(None, 0.1);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.cpu_fallback_intensity, 0.0);
    }

    #[test]
    fn supported_codec_runs_on_aie() {
        let mut a = aie();
        let d = AieDemand::new(DspKernel::VideoDecode(Codec::H264), 1.0);
        let r = a.tick(Some(&d), 0.1);
        assert!(r.utilization > 0.0);
        assert_eq!(r.cpu_fallback_intensity, 0.0);
    }

    #[test]
    fn av1_falls_back_to_cpu() {
        let mut a = aie();
        let d = AieDemand::new(DspKernel::VideoDecode(Codec::Av1), 1.0);
        let r = a.tick(Some(&d), 0.1);
        assert_eq!(r.utilization, 0.0);
        assert!(
            r.cpu_fallback_intensity > 0.5,
            "AV1 software decode is expensive"
        );
    }

    #[test]
    fn av1_fallback_costlier_than_h264_would_be() {
        assert!(Codec::Av1.sw_decode_cost() > Codec::H265.sw_decode_cost());
        assert!(Codec::H265.sw_decode_cost() > Codec::H264.sw_decode_cost());
    }

    #[test]
    fn nn_kernels_load_more_than_dsp_kernels() {
        assert!(DspKernel::SuperResolution.base_load() > DspKernel::Fft.base_load());
        assert!(DspKernel::ObjectDetection.base_load() > DspKernel::PngDecode.base_load());
    }

    #[test]
    fn intensity_scales_utilization() {
        let mut a = aie();
        let full = a
            .tick(Some(&AieDemand::new(DspKernel::Fft, 1.0)), 0.1)
            .utilization;
        let mut a2 = aie();
        let half = a2
            .tick(Some(&AieDemand::new(DspKernel::Fft, 0.5)), 0.1)
            .utilization;
        assert!((full / half - 2.0).abs() < 1e-9);
    }

    #[test]
    fn load_metric_normalized() {
        let r = AieTickResult {
            utilization: 0.4,
            frequency_mhz: 500.0,
            cpu_fallback_intensity: 0.0,
        };
        assert!((r.load(1000.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn dvfs_tracks_demand() {
        let mut a = aie();
        let d = AieDemand::new(DspKernel::ObjectDetection, 1.0);
        let first = a.tick(Some(&d), 0.1);
        let mut last = first;
        for _ in 0..40 {
            last = a.tick(Some(&d), 0.1);
        }
        assert!(last.frequency_mhz > first.frequency_mhz);
    }

    #[test]
    fn quiescence_tracks_the_idle_ramp() {
        let mut a = aie();
        assert!(a.is_quiescent(), "fresh AIE rests at the floor OPP");
        a.tick(Some(&AieDemand::new(DspKernel::ObjectDetection, 1.0)), 0.1);
        assert!(!a.is_quiescent(), "ramping after load");
        for _ in 0..200 {
            a.tick(None, 0.1);
        }
        assert!(a.is_quiescent());
        let r1 = a.tick(None, 0.1);
        let r2 = a.tick(None, 0.1);
        assert_eq!(r1, r2, "idle ticks at the fixpoint are no-ops");
    }

    #[test]
    fn kernel_codec_accessor() {
        assert_eq!(DspKernel::VideoDecode(Codec::Vp9).codec(), Some(Codec::Vp9));
        assert_eq!(DspKernel::Fft.codec(), None);
    }
}
