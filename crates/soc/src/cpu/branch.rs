//! Analytic branch-predictor model.

/// A branch predictor characterized by a single quality figure.
///
/// Modern predictors (TAGE-like) mispredict a small base fraction of
/// branches even on predictable code; data-dependent, high-entropy branches
/// add mispredictions on top. The model combines the hardware quality
/// (per-cluster, from [`crate::config::ClusterConfig`]) with the workload's
/// branch predictability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchPredictor {
    quality: f64,
}

impl BranchPredictor {
    /// Build a predictor with quality in `[0, 1]` (1.0 = perfect).
    /// Out-of-range values are clamped.
    pub fn new(quality: f64) -> Self {
        BranchPredictor {
            quality: quality.clamp(0.0, 1.0),
        }
    }

    /// Hardware quality figure.
    pub fn quality(&self) -> f64 {
        self.quality
    }

    /// Fraction of executed branches that mispredict, for a workload whose
    /// branches have the given predictability in `[0, 1]`.
    pub fn mispredict_ratio(&self, predictability: f64) -> f64 {
        let predictability = predictability.clamp(0.0, 1.0);
        // Base hardware floor plus a workload-entropy term the predictor
        // can only partially absorb.
        let floor = (1.0 - self.quality) * 0.25;
        let entropy = (1.0 - predictability) * (1.0 - 0.6 * self.quality);
        (floor + entropy * 0.35).min(1.0)
    }

    /// Branch misses per kilo-instruction for a stream with
    /// `branches_per_kilo_instr` branches of the given predictability.
    pub fn branch_mpki(&self, branches_per_kilo_instr: f64, predictability: f64) -> f64 {
        branches_per_kilo_instr.max(0.0) * self.mispredict_ratio(predictability)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictor_on_predictable_code() {
        let p = BranchPredictor::new(1.0);
        assert_eq!(p.mispredict_ratio(1.0), 0.0);
        assert_eq!(p.branch_mpki(180.0, 1.0), 0.0);
    }

    #[test]
    fn lower_quality_mispredicts_more() {
        let good = BranchPredictor::new(0.97);
        let bad = BranchPredictor::new(0.80);
        assert!(bad.mispredict_ratio(0.9) > good.mispredict_ratio(0.9));
    }

    #[test]
    fn entropy_raises_mispredictions() {
        let p = BranchPredictor::new(0.95);
        assert!(p.mispredict_ratio(0.2) > p.mispredict_ratio(0.95));
    }

    #[test]
    fn ratio_bounded() {
        for q in [0.0, 0.5, 1.0] {
            for pr in [0.0, 0.5, 1.0] {
                let r = BranchPredictor::new(q).mispredict_ratio(pr);
                assert!((0.0..=1.0).contains(&r));
            }
        }
    }

    #[test]
    fn quality_clamped() {
        assert_eq!(BranchPredictor::new(7.0).quality(), 1.0);
        assert_eq!(BranchPredictor::new(-1.0).quality(), 0.0);
    }

    #[test]
    fn mpki_scales_with_branch_rate() {
        let p = BranchPredictor::new(0.9);
        let low = p.branch_mpki(100.0, 0.5);
        let high = p.branch_mpki(200.0, 0.5);
        assert!((high / low - 2.0).abs() < 1e-9);
    }
}
