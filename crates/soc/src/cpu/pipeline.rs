//! Analytic pipeline model: cycles-per-instruction as a CPI stack.
//!
//! `CPI = CPI_base(mix, ILP, width) + CPI_memory(misses) + CPI_branch`
//!
//! The base term models issue-width utilization; the memory term charges
//! each cache level's misses with that level's incremental latency,
//! discounted by memory-level parallelism; the branch term charges
//! mispredictions with the pipeline refill penalty.

use crate::cache::MissBreakdown;
use crate::config::ClusterKind;
use crate::cpu::InstructionMix;

/// Per-cluster pipeline timing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineModel {
    /// Sustainable micro-op issue width.
    pub issue_width: f64,
    /// Pipeline refill penalty on a branch mispredict, in cycles.
    pub branch_penalty: f64,
    /// L1-miss (L2 hit) latency in cycles.
    pub l2_latency: f64,
    /// L2-miss (L3 hit) latency in cycles.
    pub l3_latency: f64,
    /// L3-miss (SLC hit) latency in cycles.
    pub slc_latency: f64,
    /// SLC-miss (DRAM) latency in cycles.
    pub dram_latency: f64,
}

impl PipelineModel {
    /// Timing parameters typical for each cluster kind of a 2021-era
    /// flagship SoC, with the given issue width from the configuration.
    pub fn for_cluster(kind: ClusterKind, issue_width: f64) -> Self {
        match kind {
            ClusterKind::Big => PipelineModel {
                issue_width,
                branch_penalty: 14.0,
                l2_latency: 13.0,
                l3_latency: 38.0,
                slc_latency: 52.0,
                dram_latency: 170.0,
            },
            ClusterKind::Mid => PipelineModel {
                issue_width,
                branch_penalty: 12.0,
                l2_latency: 11.0,
                l3_latency: 34.0,
                slc_latency: 48.0,
                dram_latency: 150.0,
            },
            ClusterKind::Little => PipelineModel {
                issue_width,
                branch_penalty: 8.0,
                l2_latency: 9.0,
                l3_latency: 30.0,
                slc_latency: 42.0,
                dram_latency: 120.0,
            },
        }
    }

    /// Base CPI from issue-width utilization: a thread with ILP 1.0 fills
    /// the whole width; with ILP 0.0 it issues one instruction per cycle.
    /// FP and SIMD work has longer latencies and fills the width less
    /// efficiently.
    pub fn base_cpi(&self, mix: &InstructionMix, ilp: f64) -> f64 {
        let ilp = ilp.clamp(0.0, 1.0);
        let effective_width = 1.0 + (self.issue_width - 1.0) * ilp;
        let class_cost = 1.0 + 0.35 * mix.fp_ops + 0.20 * mix.simd_ops;
        class_cost / effective_width
    }

    /// Memory-stall CPI for the given per-level misses. Memory-level
    /// parallelism (proportional to ILP on out-of-order cores) overlaps a
    /// fraction of the latency.
    pub fn memory_cpi(&self, misses: &MissBreakdown, ilp: f64) -> f64 {
        let ilp = ilp.clamp(0.0, 1.0);
        // Incremental latency charged at each level: an access that hits in
        // L3 already paid the L2 probe, and so on.
        let stall_per_kilo = misses.l1_mpki * self.l2_latency
            + misses.l2_mpki * (self.l3_latency - self.l2_latency)
            + misses.l3_mpki * (self.slc_latency - self.l3_latency)
            + misses.slc_mpki * (self.dram_latency - self.slc_latency);
        let mlp_discount = 1.0 - 0.70 * ilp;
        stall_per_kilo / 1000.0 * mlp_discount
    }

    /// Branch-stall CPI for the given branch misses per kilo-instruction.
    pub fn branch_cpi(&self, branch_mpki: f64) -> f64 {
        branch_mpki.max(0.0) / 1000.0 * self.branch_penalty
    }

    /// Total CPI of a thread on this pipeline.
    pub fn total_cpi(
        &self,
        mix: &InstructionMix,
        ilp: f64,
        misses: &MissBreakdown,
        branch_mpki: f64,
    ) -> f64 {
        self.base_cpi(mix, ilp) + self.memory_cpi(misses, ilp) + self.branch_cpi(branch_mpki)
    }

    /// Convenience inverse of [`total_cpi`](Self::total_cpi).
    pub fn ipc(
        &self,
        mix: &InstructionMix,
        ilp: f64,
        misses: &MissBreakdown,
        branch_mpki: f64,
    ) -> f64 {
        1.0 / self.total_cpi(mix, ilp, misses, branch_mpki)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_misses() -> MissBreakdown {
        MissBreakdown::default()
    }

    #[test]
    fn big_core_peak_ipc_approaches_width() {
        // The paper notes the Cortex-X1 tops out at a theoretical IPC of 8.
        let p = PipelineModel::for_cluster(ClusterKind::Big, 8.0);
        let mix = InstructionMix::integer();
        let ipc = p.ipc(&mix, 1.0, &no_misses(), 0.0);
        assert!(ipc > 7.0 && ipc <= 8.0, "peak IPC {ipc}");
    }

    #[test]
    fn little_core_is_slower_than_big() {
        let big = PipelineModel::for_cluster(ClusterKind::Big, 8.0);
        let little = PipelineModel::for_cluster(ClusterKind::Little, 2.0);
        let mix = InstructionMix::integer();
        assert!(big.ipc(&mix, 0.6, &no_misses(), 1.0) > little.ipc(&mix, 0.6, &no_misses(), 1.0));
    }

    #[test]
    fn misses_lower_ipc() {
        let p = PipelineModel::for_cluster(ClusterKind::Big, 8.0);
        let mix = InstructionMix::memory_bound();
        let clean = p.ipc(&mix, 0.5, &no_misses(), 0.0);
        let missy = MissBreakdown {
            l1_mpki: 60.0,
            l2_mpki: 40.0,
            l3_mpki: 25.0,
            slc_mpki: 20.0,
        };
        let dirty = p.ipc(&mix, 0.5, &missy, 0.0);
        assert!(dirty < clean * 0.5, "heavy misses must at least halve IPC");
    }

    #[test]
    fn branch_misses_lower_ipc() {
        let p = PipelineModel::for_cluster(ClusterKind::Mid, 4.0);
        let mix = InstructionMix::integer();
        let clean = p.ipc(&mix, 0.5, &no_misses(), 0.0);
        let dirty = p.ipc(&mix, 0.5, &no_misses(), 20.0);
        assert!(dirty < clean);
    }

    #[test]
    fn fp_mix_costs_more_than_integer() {
        let p = PipelineModel::for_cluster(ClusterKind::Big, 8.0);
        assert!(
            p.base_cpi(&InstructionMix::floating_point(), 0.5)
                > p.base_cpi(&InstructionMix::integer(), 0.5)
        );
    }

    #[test]
    fn mlp_discount_softens_memory_stalls() {
        let p = PipelineModel::for_cluster(ClusterKind::Big, 8.0);
        let misses = MissBreakdown {
            l1_mpki: 30.0,
            l2_mpki: 20.0,
            l3_mpki: 10.0,
            slc_mpki: 8.0,
        };
        assert!(p.memory_cpi(&misses, 0.9) < p.memory_cpi(&misses, 0.1));
    }

    #[test]
    fn zero_ilp_single_issue() {
        let p = PipelineModel::for_cluster(ClusterKind::Little, 2.0);
        // A mix with no FP/SIMD class cost issues exactly one instruction
        // per cycle when no ILP is exploitable.
        let pure_int = InstructionMix::new(0.6, 0.0, 0.0, 0.3, 0.1);
        let cpi = p.base_cpi(&pure_int, 0.0);
        assert!((cpi - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cpi_stack_is_additive() {
        let p = PipelineModel::for_cluster(ClusterKind::Mid, 4.0);
        let mix = InstructionMix::simd();
        let misses = MissBreakdown {
            l1_mpki: 10.0,
            l2_mpki: 5.0,
            l3_mpki: 2.0,
            slc_mpki: 1.0,
        };
        let total = p.total_cpi(&mix, 0.4, &misses, 5.0);
        let parts = p.base_cpi(&mix, 0.4) + p.memory_cpi(&misses, 0.4) + p.branch_cpi(5.0);
        assert!((total - parts).abs() < 1e-12);
    }
}
