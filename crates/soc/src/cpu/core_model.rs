//! Per-tick execution accounting for CPU cores.

/// Counters produced by (part of) a CPU cluster during one tick.
///
/// All values are absolute event counts for the tick, not rates; the
/// profiler converts them into IPC/MPKI-style metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreTick {
    /// Dynamic instructions retired.
    pub instructions: f64,
    /// Active (non-idle) CPU cycles spent.
    pub cycles: f64,
    /// Cache misses summed over all hierarchy levels (the paper's
    /// all-level miss count).
    pub cache_misses: f64,
    /// Misses that reached DRAM.
    pub dram_accesses: f64,
    /// Branch instructions executed.
    pub branches: f64,
    /// Branch mispredictions.
    pub branch_misses: f64,
}

impl CoreTick {
    /// Accumulate another tick's counters into this one.
    pub fn add(&mut self, other: &CoreTick) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.cache_misses += other.cache_misses;
        self.dram_accesses += other.dram_accesses;
        self.branches += other.branches;
        self.branch_misses += other.branch_misses;
    }

    /// Instructions per active cycle (0 when no cycles were spent).
    pub fn ipc(&self) -> f64 {
        if self.cycles > 0.0 {
            self.instructions / self.cycles
        } else {
            0.0
        }
    }

    /// All-level cache misses per kilo-instruction (0 when idle).
    pub fn cache_mpki(&self) -> f64 {
        if self.instructions > 0.0 {
            self.cache_misses / self.instructions * 1000.0
        } else {
            0.0
        }
    }

    /// Branch misses per kilo-instruction (0 when idle).
    pub fn branch_mpki(&self) -> f64 {
        if self.instructions > 0.0 {
            self.branch_misses / self.instructions * 1000.0
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_rates_are_zero() {
        let t = CoreTick::default();
        assert_eq!(t.ipc(), 0.0);
        assert_eq!(t.cache_mpki(), 0.0);
        assert_eq!(t.branch_mpki(), 0.0);
    }

    #[test]
    fn add_accumulates_all_fields() {
        let mut a = CoreTick {
            instructions: 1000.0,
            cycles: 2000.0,
            cache_misses: 10.0,
            dram_accesses: 2.0,
            branches: 180.0,
            branch_misses: 4.0,
        };
        let b = a;
        a.add(&b);
        assert_eq!(a.instructions, 2000.0);
        assert_eq!(a.cycles, 4000.0);
        assert_eq!(a.cache_misses, 20.0);
        assert_eq!(a.dram_accesses, 4.0);
        assert_eq!(a.branches, 360.0);
        assert_eq!(a.branch_misses, 8.0);
    }

    #[test]
    fn derived_rates() {
        let t = CoreTick {
            instructions: 10_000.0,
            cycles: 8_000.0,
            cache_misses: 50.0,
            dram_accesses: 5.0,
            branches: 1800.0,
            branch_misses: 20.0,
        };
        assert!((t.ipc() - 1.25).abs() < 1e-12);
        assert!((t.cache_mpki() - 5.0).abs() < 1e-12);
        assert!((t.branch_mpki() - 2.0).abs() < 1e-12);
    }
}
