//! Runtime model of one CPU core cluster.
//!
//! The paper observes that *"the load values for cores belonging to the
//! same cluster are almost identical"* (§V-C) and therefore reports
//! per-cluster loads; the simulator models each cluster as a unit with
//! `cores` execution slots sharing one DVFS domain, one pipeline model and
//! one branch predictor, exactly as the analysis consumes it.

use crate::cache::{CacheConfig, CacheHierarchy};
use crate::config::ClusterConfig;
use crate::cpu::{BranchPredictor, CoreTick, PipelineModel, ThreadDemand};
use crate::freq::Governor;

/// Per-tick output of one cluster.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterTickResult {
    /// Mean core utilization across the cluster, in `[0, 1]`.
    pub utilization: f64,
    /// Operating frequency for the tick, in MHz.
    pub frequency_mhz: f64,
    /// Execution counters accumulated over all cores of the cluster.
    pub counters: CoreTick,
}

impl ClusterTickResult {
    /// An idle tick at the given floor frequency.
    pub fn idle(frequency_mhz: f64) -> Self {
        ClusterTickResult {
            utilization: 0.0,
            frequency_mhz,
            counters: CoreTick::default(),
        }
    }

    /// The paper's CPU Load metric for this cluster: frequency ×
    /// utilization, normalized by the given maximum frequency so the result
    /// is in `[0, 1]`.
    pub fn load(&self, max_freq_mhz: f64) -> f64 {
        if max_freq_mhz <= 0.0 {
            return 0.0;
        }
        (self.frequency_mhz * self.utilization / max_freq_mhz).clamp(0.0, 1.0)
    }
}

/// One CPU core cluster: `cores` identical cores sharing a frequency
/// domain, cache hierarchy model and branch predictor.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    pipeline: PipelineModel,
    predictor: BranchPredictor,
    hierarchy: CacheHierarchy,
    governor: Governor,
}

impl Cluster {
    /// Build the runtime model from a validated configuration and the
    /// platform's shared caches.
    pub fn new(config: ClusterConfig, l3: CacheConfig, slc: CacheConfig) -> Self {
        let pipeline = PipelineModel::for_cluster(config.kind, config.issue_width);
        let predictor = BranchPredictor::new(config.branch_predictor_quality);
        let hierarchy = CacheHierarchy::new(config.l1d_kib, config.l2_kib, l3, slc);
        let governor = Governor::for_range(config.min_freq_mhz, config.max_freq_mhz);
        Cluster {
            config,
            pipeline,
            predictor,
            hierarchy,
            governor,
        }
    }

    /// The cluster's static configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Switch the cluster's DVFS policy (ablation hook).
    pub fn set_governor_policy(&mut self, policy: crate::freq::GovernorPolicy) {
        self.governor.set_policy(policy);
    }

    /// Propagate shared-cache contention (KiB in L3, KiB in SLC) for the
    /// upcoming tick.
    pub fn set_shared_contention(&mut self, l3_kib: f64, slc_kib: f64) {
        self.hierarchy.set_shared_contention(l3_kib, slc_kib);
    }

    /// Execute the threads assigned to this cluster for one tick of
    /// `tick_seconds` and return utilization, frequency and counters.
    ///
    /// If the combined intensity exceeds the cluster's core count the
    /// threads time-share: each thread's share is scaled down
    /// proportionally (run-queue saturation).
    pub fn tick(&mut self, assigned: &[ThreadDemand], tick_seconds: f64) -> ClusterTickResult {
        let cores = self.config.cores as f64;
        let total_intensity: f64 = assigned.iter().map(|t| t.intensity).sum();
        let utilization = (total_intensity / cores).clamp(0.0, 1.0);
        let freq = self.governor.tick(utilization);
        // Oversubscription: threads share the available core-time.
        let scale = if total_intensity > cores {
            cores / total_intensity
        } else {
            1.0
        };

        let mut counters = CoreTick::default();
        for thread in assigned {
            let share = thread.intensity * scale;
            if share <= 0.0 {
                continue;
            }
            let misses = self.hierarchy.misses(&thread.memory_profile());
            let branch_mpki = self.predictor.branch_mpki(
                thread.mix.branches_per_kilo_instr(),
                thread.branch_predictability,
            );
            let cpi = self
                .pipeline
                .total_cpi(&thread.mix, thread.ilp, &misses, branch_mpki);
            let cycles = share * freq * 1.0e6 * tick_seconds;
            let instructions = cycles / cpi;
            counters.add(&CoreTick {
                instructions,
                cycles,
                cache_misses: instructions / 1000.0 * misses.total_mpki(),
                dram_accesses: instructions / 1000.0 * misses.dram_apki(),
                branches: instructions * thread.mix.branches,
                branch_misses: instructions / 1000.0 * branch_mpki,
            });
        }

        ClusterTickResult {
            utilization,
            frequency_mhz: freq,
            counters,
        }
    }

    /// Whether an *idle* tick (no assigned threads) would leave the
    /// cluster bit-identical: with nothing assigned the pipeline, caches
    /// and predictor are pure and unused, so the only evolving state is
    /// the DVFS governor — quiescence is its zero-utilization fixpoint.
    /// The event engine uses this to skip idle clusters entirely.
    pub fn is_quiescent(&self) -> bool {
        self.governor.is_settled_at(0.0)
    }

    /// Reset DVFS state between benchmark runs.
    pub fn reset(&mut self) {
        self.governor.reset();
        self.hierarchy.set_shared_contention(0.0, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SocConfig;

    fn big_cluster() -> Cluster {
        let soc = SocConfig::snapdragon_888();
        let cfg = soc
            .cluster(crate::config::ClusterKind::Big)
            .unwrap()
            .clone();
        Cluster::new(cfg, soc.l3.clone(), soc.slc.clone())
    }

    fn little_cluster() -> Cluster {
        let soc = SocConfig::snapdragon_888();
        let cfg = soc
            .cluster(crate::config::ClusterKind::Little)
            .unwrap()
            .clone();
        Cluster::new(cfg, soc.l3.clone(), soc.slc.clone())
    }

    #[test]
    fn idle_tick_produces_no_instructions() {
        let mut c = big_cluster();
        let r = c.tick(&[], 0.1);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.counters.instructions, 0.0);
    }

    #[test]
    fn busy_tick_produces_instructions() {
        let mut c = big_cluster();
        let t = ThreadDemand::new(1.0);
        let mut r = ClusterTickResult::idle(0.0);
        for _ in 0..20 {
            r = c.tick(std::slice::from_ref(&t), 0.1);
        }
        assert_eq!(r.utilization, 1.0);
        assert!(
            r.counters.instructions > 1.0e8 * 0.1,
            "got {}",
            r.counters.instructions
        );
        assert!(r.counters.ipc() > 0.5);
    }

    #[test]
    fn oversubscription_caps_utilization_and_timeshares() {
        let mut c = little_cluster(); // 4 cores
        let threads = vec![ThreadDemand::new(1.0); 8];
        let mut r = ClusterTickResult::idle(0.0);
        for _ in 0..20 {
            r = c.tick(&threads, 0.1);
        }
        assert_eq!(r.utilization, 1.0);
        // 8 threads on 4 cores produce the same cycles as 4 threads.
        let mut c2 = little_cluster();
        let four = vec![ThreadDemand::new(1.0); 4];
        let mut r2 = ClusterTickResult::idle(0.0);
        for _ in 0..20 {
            r2 = c2.tick(&four, 0.1);
        }
        assert!((r.counters.cycles - r2.counters.cycles).abs() / r2.counters.cycles < 1e-9);
    }

    #[test]
    fn load_combines_frequency_and_utilization() {
        let r = ClusterTickResult {
            utilization: 0.5,
            frequency_mhz: 1500.0,
            counters: CoreTick::default(),
        };
        assert!((r.load(3000.0) - 0.25).abs() < 1e-12);
        assert_eq!(r.load(0.0), 0.0);
    }

    #[test]
    fn dvfs_raises_frequency_under_load() {
        let mut c = big_cluster();
        let t = ThreadDemand::new(1.0);
        let first = c.tick(std::slice::from_ref(&t), 0.1);
        let mut last = first;
        for _ in 0..30 {
            last = c.tick(std::slice::from_ref(&t), 0.1);
        }
        assert!(last.frequency_mhz > first.frequency_mhz);
        assert!((last.frequency_mhz - 3000.0).abs() < 1.0);
    }

    #[test]
    fn contention_reduces_ipc() {
        let mut t = ThreadDemand::new(1.0);
        t.working_set_kib = 5000.0;
        let mut clean = big_cluster();
        let mut contended = big_cluster();
        contended.set_shared_contention(3000.0, 2000.0);
        let mut r_clean = ClusterTickResult::idle(0.0);
        let mut r_cont = ClusterTickResult::idle(0.0);
        for _ in 0..20 {
            r_clean = clean.tick(std::slice::from_ref(&t), 0.1);
            r_cont = contended.tick(std::slice::from_ref(&t), 0.1);
        }
        assert!(r_cont.counters.ipc() < r_clean.counters.ipc());
        assert!(r_cont.counters.cache_mpki() > r_clean.counters.cache_mpki());
    }

    #[test]
    fn quiescence_means_idle_ticks_are_identities() {
        let mut c = big_cluster();
        assert!(c.is_quiescent(), "fresh cluster rests at the floor OPP");
        let t = ThreadDemand::new(1.0);
        c.tick(std::slice::from_ref(&t), 0.1);
        assert!(!c.is_quiescent(), "ramping after load");
        // Ramp back down to the idle fixpoint.
        for _ in 0..200 {
            c.tick(&[], 0.1);
        }
        assert!(c.is_quiescent());
        let before = c.tick(&[], 0.1);
        let after = c.tick(&[], 0.1);
        assert_eq!(before, after, "idle ticks at the fixpoint are no-ops");
    }

    #[test]
    fn reset_restores_floor_frequency() {
        let mut c = big_cluster();
        let t = ThreadDemand::new(1.0);
        for _ in 0..30 {
            c.tick(std::slice::from_ref(&t), 0.1);
        }
        c.reset();
        let r = c.tick(&[], 0.1);
        assert!(r.frequency_mhz < 1000.0);
    }
}
