//! # mwc-soc — a deterministic mobile System-on-Chip simulator
//!
//! This crate is the hardware substrate for the reproduction of
//! *Workload Characterization of Commercial Mobile Benchmark Suites*
//! (ISPASS 2024). The paper measures commercial benchmarks on a Qualcomm
//! Snapdragon 888 Mobile Hardware Development Kit; this crate provides a
//! simulated equivalent with the same topology so that the paper's entire
//! analysis pipeline can run without the proprietary device:
//!
//! * a tri-cluster heterogeneous CPU (1 big + 3 mid + 4 little cores) with
//!   per-cluster DVFS ([`freq`]), an analytic pipeline/CPI model
//!   ([`cpu::pipeline`]) and a branch-predictor model ([`cpu::branch`]),
//! * a multi-level cache hierarchy (per-core L1/L2, shared L3, system-level
//!   cache) with working-set-based miss curves and cross-component
//!   contention ([`cache`]),
//! * a GPU with a shader array, a memory bus and OpenGL ES / Vulkan front
//!   ends ([`gpu`]),
//! * an AI engine (DSP) with a video-codec support matrix ([`aie`]),
//! * DRAM and flash-storage models ([`memory`], [`storage`]),
//! * an EAS-style big.LITTLE scheduler ([`sched`]), and
//! * a time-stepped simulation engine that turns a [`Workload`] into a
//!   stream of hardware-counter samples ([`engine`]).
//!
//! The simulation is fully deterministic for a given seed: every run of the
//! same workload on the same configuration produces bit-identical counter
//! traces.
//!
//! ## Quick example
//!
//! ```
//! use mwc_soc::config::SocConfig;
//! use mwc_soc::engine::Engine;
//! use mwc_soc::workload::{ConstantWorkload, Demand};
//! use mwc_soc::cpu::CpuDemand;
//!
//! let soc = SocConfig::snapdragon_888();
//! let mut demand = Demand::idle();
//! demand.cpu = CpuDemand::single_thread(0.8);
//! let workload = ConstantWorkload::new("busy-loop", 10.0, demand);
//! let mut engine = Engine::new(soc, 42)?;
//! let trace = engine.run(&workload);
//! assert!(trace.total_instructions() > 0.0);
//! # Ok::<(), mwc_soc::error::SocError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::print_stdout, clippy::print_stderr)]
#![forbid(unsafe_code)]

pub mod aie;
pub mod cache;
pub mod config;
pub mod counters;
pub mod cpu;
pub mod engine;
pub mod error;
pub mod event;
pub mod freq;
pub mod gpu;
pub mod memory;
pub mod sched;
pub mod storage;
pub mod workload;

pub use config::SocConfig;
pub use engine::{Engine, EngineMode};
pub use error::SocError;
pub use workload::{Demand, Workload};

/// Length of one simulation tick in seconds.
///
/// This matches the sampling period a real-time profiler would use
/// (Snapdragon Profiler samples at a comparable granularity). All engine
/// counters are accumulated per tick and exposed to observers at this
/// resolution.
pub const TICK_SECONDS: f64 = 0.1;
