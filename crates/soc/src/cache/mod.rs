//! Multi-level cache hierarchy with analytic working-set miss curves.
//!
//! The simulator does not model individual memory accesses; instead every
//! cache level exposes an analytic miss-ratio curve derived from the classic
//! working-set model: accesses that fit in the cache hit (beyond a small
//! compulsory floor), and the miss ratio grows with the fraction of the
//! working set that spills past the cache, shaped by the access locality of
//! the workload.
//!
//! Two SoC-level effects central to the paper are captured here:
//!
//! * **Shared-cache contention** — GPU texture traffic occupies space in the
//!   shared L3/system-level cache, shrinking the capacity effectively
//!   available to the CPU. The paper attributes the low IPC of graphics
//!   benchmarks to exactly this effect (§V-A).
//! * **All-level miss aggregation** — the paper's "Cache MPKI" counts misses
//!   across every level of the hierarchy; [`CacheHierarchy::misses`] returns
//!   the same aggregate alongside per-level values.

mod hierarchy;
mod level;

pub use hierarchy::{CacheHierarchy, MemoryProfile, MissBreakdown};
pub use level::{CacheConfig, CacheLevel};
