//! Composition of cache levels into the SoC hierarchy.

use super::level::{CacheConfig, CacheLevel};

/// Memory behaviour of an instruction stream, as seen by the cache model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryProfile {
    /// Size of the stream's working set in KiB.
    pub working_set_kib: f64,
    /// Access locality in `[0, 1]`; see [`CacheLevel::miss_ratio`].
    pub locality: f64,
    /// Data-memory accesses per thousand instructions (loads + stores).
    pub accesses_per_kilo_instr: f64,
}

impl MemoryProfile {
    /// A profile that never touches memory (pure register compute).
    pub fn compute_only() -> Self {
        MemoryProfile {
            working_set_kib: 0.0,
            locality: 1.0,
            accesses_per_kilo_instr: 0.0,
        }
    }
}

/// Misses per kilo-instruction observed at each level for one stream.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MissBreakdown {
    /// Misses per kilo-instruction in the private L1 data cache.
    pub l1_mpki: f64,
    /// Misses per kilo-instruction in the private L2.
    pub l2_mpki: f64,
    /// Misses per kilo-instruction in the shared L3.
    pub l3_mpki: f64,
    /// Misses per kilo-instruction in the system-level cache.
    pub slc_mpki: f64,
}

impl MissBreakdown {
    /// Aggregate misses across every level, per kilo-instruction.
    ///
    /// This is the paper's "Cache MPKI" definition: *"We capture the misses
    /// across all levels of the cache hierarchy"* (§V-A).
    pub fn total_mpki(&self) -> f64 {
        self.l1_mpki + self.l2_mpki + self.l3_mpki + self.slc_mpki
    }

    /// Accesses that fall through to DRAM, per kilo-instruction.
    pub fn dram_apki(&self) -> f64 {
        self.slc_mpki
    }
}

/// The full cache hierarchy seen by one CPU core: private L1D and L2 plus
/// the shared L3 and system-level cache.
///
/// The shared levels are subject to contention from other SoC agents
/// (GPU textures, AIE buffers); call [`set_shared_contention`] each
/// simulation tick before querying [`misses`].
///
/// [`set_shared_contention`]: CacheHierarchy::set_shared_contention
/// [`misses`]: CacheHierarchy::misses
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1d: CacheLevel,
    l2: CacheLevel,
    l3: CacheLevel,
    slc: CacheLevel,
}

impl CacheHierarchy {
    /// Assemble the hierarchy for a core with the given private caches and
    /// the platform's shared caches.
    pub fn new(l1d_kib: u32, l2_kib: u32, l3: CacheConfig, slc: CacheConfig) -> Self {
        CacheHierarchy {
            l1d: CacheLevel::new(CacheConfig::new("L1D", l1d_kib)),
            l2: CacheLevel::new(CacheConfig::new("L2", l2_kib)),
            l3: CacheLevel::new(l3),
            slc: CacheLevel::new(slc),
        }
    }

    /// Declare the capacity (KiB) of the shared levels occupied by other
    /// SoC agents for the current interval. `l3_kib` applies to the L3,
    /// `slc_kib` to the system-level cache.
    pub fn set_shared_contention(&mut self, l3_kib: f64, slc_kib: f64) {
        self.l3.set_contention(l3_kib);
        self.slc.set_contention(slc_kib);
    }

    /// Per-level misses for a stream with the given memory profile.
    ///
    /// Each level's *global* miss ratio is evaluated against the stream's
    /// working set; the level's observed misses are exactly the accesses
    /// that overflow its (effective) capacity, so deeper levels see
    /// monotonically fewer misses.
    pub fn misses(&self, profile: &MemoryProfile) -> MissBreakdown {
        let apki = profile.accesses_per_kilo_instr.max(0.0);
        if apki == 0.0 {
            return MissBreakdown::default();
        }
        let ws = profile.working_set_kib;
        let loc = profile.locality;
        let g_l1 = self.l1d.miss_ratio(ws, loc);
        // A stream cannot miss more in a larger, deeper cache than in a
        // smaller one; clamp to preserve inclusion monotonicity even under
        // heavy shared-cache contention.
        let g_l2 = self.l2.miss_ratio(ws, loc).min(g_l1);
        let g_l3 = self.l3.miss_ratio(ws, loc).min(g_l2);
        let g_slc = self.slc.miss_ratio(ws, loc).min(g_l3);
        MissBreakdown {
            l1_mpki: apki * g_l1,
            l2_mpki: apki * g_l2,
            l3_mpki: apki * g_l3,
            slc_mpki: apki * g_slc,
        }
    }

    /// The shared L3 level (for inspection in tests and reports).
    pub fn l3(&self) -> &CacheLevel {
        &self.l3
    }

    /// The system-level cache (for inspection in tests and reports).
    pub fn slc(&self) -> &CacheLevel {
        &self.slc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_core_hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(
            64,
            1024,
            CacheConfig::new("L3", 4096),
            CacheConfig::new("SLC", 3072),
        )
    }

    fn profile(ws: f64, apki: f64) -> MemoryProfile {
        MemoryProfile {
            working_set_kib: ws,
            locality: 0.6,
            accesses_per_kilo_instr: apki,
        }
    }

    #[test]
    fn compute_only_has_no_misses() {
        let h = big_core_hierarchy();
        let b = h.misses(&MemoryProfile::compute_only());
        assert_eq!(b.total_mpki(), 0.0);
        assert_eq!(b.dram_apki(), 0.0);
    }

    #[test]
    fn deeper_levels_never_miss_more() {
        let h = big_core_hierarchy();
        for ws in [16.0, 128.0, 2048.0, 8192.0, 100_000.0] {
            let b = h.misses(&profile(ws, 300.0));
            assert!(b.l1_mpki >= b.l2_mpki, "ws={ws}");
            assert!(b.l2_mpki >= b.l3_mpki, "ws={ws}");
            assert!(b.l3_mpki >= b.slc_mpki, "ws={ws}");
        }
    }

    #[test]
    fn l1_resident_stream_mostly_hits() {
        let h = big_core_hierarchy();
        let b = h.misses(&profile(32.0, 300.0));
        assert!(b.total_mpki() < 5.0, "got {}", b.total_mpki());
    }

    #[test]
    fn dram_bound_stream_misses_everywhere() {
        let h = big_core_hierarchy();
        let b = h.misses(&MemoryProfile {
            working_set_kib: 1_000_000.0,
            locality: 0.05,
            accesses_per_kilo_instr: 400.0,
        });
        assert!(b.slc_mpki > 50.0, "expected heavy DRAM traffic, got {b:?}");
    }

    #[test]
    fn gpu_contention_raises_cpu_misses() {
        let mut h = big_core_hierarchy();
        let ws = 5000.0; // fits in L3+margin but not under contention
        let before = h.misses(&profile(ws, 300.0));
        h.set_shared_contention(3500.0, 2500.0);
        let after = h.misses(&profile(ws, 300.0));
        assert!(
            after.total_mpki() > before.total_mpki(),
            "contention must raise total MPKI ({} vs {})",
            after.total_mpki(),
            before.total_mpki()
        );
        assert!(after.l3_mpki > before.l3_mpki);
    }

    #[test]
    fn misses_scale_with_access_rate() {
        let h = big_core_hierarchy();
        let low = h.misses(&profile(8192.0, 100.0));
        let high = h.misses(&profile(8192.0, 400.0));
        assert!((high.total_mpki() / low.total_mpki() - 4.0).abs() < 1e-9);
    }
}
