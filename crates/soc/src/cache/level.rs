//! A single cache level and its analytic miss-ratio curve.

/// Static description of one cache level.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheConfig {
    /// Display name ("L1D", "L2", "L3", "SLC", ...).
    pub name: String,
    /// Capacity in KiB.
    pub size_kib: u32,
}

impl CacheConfig {
    /// Create a cache level description.
    pub fn new(name: impl Into<String>, size_kib: u32) -> Self {
        CacheConfig {
            name: name.into(),
            size_kib,
        }
    }

    /// Validate the configuration, returning a human-readable description
    /// of the problem on failure.
    pub fn validate(&self) -> Result<(), String> {
        if self.size_kib == 0 {
            return Err(format!("cache '{}' has zero size", self.name));
        }
        Ok(())
    }
}

/// Runtime model of one cache level.
///
/// The model is an analytic miss-ratio curve: given the working-set size of
/// the access stream that reaches this level and its locality, it returns
/// the fraction of those accesses that miss.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheLevel {
    config: CacheConfig,
    /// Capacity currently stolen by other agents (e.g. GPU textures in a
    /// shared cache), in KiB.
    stolen_kib: f64,
}

/// Fraction of accesses that always miss (cold/compulsory misses and
/// coherence traffic), even for cache-resident working sets.
const COMPULSORY_MISS_RATIO: f64 = 0.002;

/// Spatial-reuse factor: accesses are word-granular but caches fetch whole
/// lines, so even a pure streaming pass hits on the remaining words of
/// each fetched line. Scales the capacity-miss term of the curve.
const SPATIAL_REUSE_FACTOR: f64 = 0.30;

impl CacheLevel {
    /// Build the runtime model for a cache level.
    pub fn new(config: CacheConfig) -> Self {
        CacheLevel {
            config,
            stolen_kib: 0.0,
        }
    }

    /// The static configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Capacity in KiB effectively available after contention.
    pub fn effective_kib(&self) -> f64 {
        // A sliver of capacity always remains usable: replacement policies
        // never let one agent monopolize the array entirely.
        (f64::from(self.config.size_kib) - self.stolen_kib)
            .max(f64::from(self.config.size_kib) * 0.1)
    }

    /// Declare that `kib` KiB of this cache are occupied by another agent
    /// for the current interval (e.g. GPU texture residency in L3/SLC).
    pub fn set_contention(&mut self, kib: f64) {
        self.stolen_kib = kib.max(0.0);
    }

    /// Current contention in KiB.
    pub fn contention_kib(&self) -> f64 {
        self.stolen_kib
    }

    /// Miss ratio for an access stream with the given working set (KiB) and
    /// locality in `[0, 1]` (1.0 = perfectly reusable accesses, 0.0 =
    /// streaming with no reuse).
    ///
    /// The curve has the standard working-set shape:
    /// * working set ≤ effective capacity ⇒ only the compulsory floor;
    /// * beyond capacity the miss ratio rises towards `1 - locality·r`
    ///   following the spilled fraction of the working set.
    pub fn miss_ratio(&self, working_set_kib: f64, locality: f64) -> f64 {
        let locality = locality.clamp(0.0, 1.0);
        let capacity = self.effective_kib();
        if working_set_kib <= 0.0 {
            return 0.0;
        }
        if working_set_kib <= capacity {
            return COMPULSORY_MISS_RATIO;
        }
        // Fraction of the working set that does not fit.
        let spill = 1.0 - capacity / working_set_kib;
        // High-locality streams keep their hot subset resident, so spilling
        // hurts them less; streaming workloads miss on nearly every spilled
        // access.
        let ceiling = 1.0 - 0.85 * locality;
        (COMPULSORY_MISS_RATIO + spill.powf(1.0 + 2.0 * locality) * ceiling * SPATIAL_REUSE_FACTOR)
            .min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l3() -> CacheLevel {
        CacheLevel::new(CacheConfig::new("L3", 4096))
    }

    #[test]
    fn fitting_working_set_only_compulsory() {
        let c = l3();
        assert_eq!(c.miss_ratio(1024.0, 0.8), COMPULSORY_MISS_RATIO);
        assert_eq!(c.miss_ratio(4096.0, 0.8), COMPULSORY_MISS_RATIO);
    }

    #[test]
    fn zero_working_set_never_misses() {
        assert_eq!(l3().miss_ratio(0.0, 0.5), 0.0);
    }

    #[test]
    fn miss_ratio_monotone_in_working_set() {
        let c = l3();
        let mut last = 0.0;
        for ws in [4096.0, 8192.0, 16384.0, 65536.0, 262_144.0] {
            let m = c.miss_ratio(ws, 0.6);
            assert!(m >= last, "miss ratio must grow with working set");
            last = m;
        }
    }

    #[test]
    fn locality_reduces_misses() {
        let c = l3();
        let streaming = c.miss_ratio(32768.0, 0.0);
        let friendly = c.miss_ratio(32768.0, 0.9);
        assert!(streaming > friendly);
    }

    #[test]
    fn miss_ratio_bounded() {
        let c = l3();
        for ws in [1.0, 1e3, 1e6, 1e9] {
            for loc in [0.0, 0.3, 0.7, 1.0] {
                let m = c.miss_ratio(ws, loc);
                assert!((0.0..=1.0).contains(&m), "miss ratio {m} out of range");
            }
        }
    }

    #[test]
    fn contention_shrinks_effective_capacity_and_raises_misses() {
        let mut c = l3();
        let before = c.miss_ratio(6000.0, 0.5);
        c.set_contention(3000.0);
        assert!(c.effective_kib() < 4096.0);
        let after = c.miss_ratio(6000.0, 0.5);
        assert!(after > before);
    }

    #[test]
    fn contention_floor_keeps_ten_percent() {
        let mut c = l3();
        c.set_contention(1e9);
        assert!((c.effective_kib() - 409.6).abs() < 1e-9);
    }

    #[test]
    fn negative_contention_clamped() {
        let mut c = l3();
        c.set_contention(-5.0);
        assert_eq!(c.contention_kib(), 0.0);
        assert_eq!(c.effective_kib(), 4096.0);
    }

    #[test]
    fn config_validation() {
        assert!(CacheConfig::new("ok", 1).validate().is_ok());
        assert!(CacheConfig::new("bad", 0).validate().is_err());
    }
}
