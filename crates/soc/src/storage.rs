//! Flash-storage model (UFS-class device).
//!
//! PCMark Storage and Antutu Mem exercise internal/external storage and
//! database IO; the model turns demanded IO rates into device busy
//! fractions and effective throughput, distinguishing sequential from
//! random access.

use crate::config::StorageConfig;

/// Access pattern of an IO stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoPattern {
    /// Large sequential transfers.
    Sequential,
    /// Small scattered transfers (database/SQLite-style).
    Random,
}

/// Storage work demanded for one tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoDemand {
    /// Read rate demanded, in MB/s.
    pub read_mbps: f64,
    /// Write rate demanded, in MB/s.
    pub write_mbps: f64,
    /// Access pattern.
    pub pattern: IoPattern,
}

impl IoDemand {
    /// A sequential stream reading and writing at the given rates.
    pub fn sequential(read_mbps: f64, write_mbps: f64) -> Self {
        IoDemand {
            read_mbps,
            write_mbps,
            pattern: IoPattern::Sequential,
        }
    }

    /// A random-access stream reading and writing at the given rates.
    pub fn random(read_mbps: f64, write_mbps: f64) -> Self {
        IoDemand {
            read_mbps,
            write_mbps,
            pattern: IoPattern::Random,
        }
    }
}

/// Per-tick output of the storage model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StorageTickResult {
    /// Device busy fraction in `[0, 1]`.
    pub busy: f64,
    /// Read throughput actually delivered, in MB/s.
    pub read_mbps: f64,
    /// Write throughput actually delivered, in MB/s.
    pub write_mbps: f64,
}

/// Runtime model of the flash storage device.
#[derive(Debug, Clone)]
pub struct Storage {
    config: StorageConfig,
}

impl Storage {
    /// Build the runtime model from a validated configuration.
    pub fn new(config: StorageConfig) -> Self {
        Storage { config }
    }

    /// The device's static configuration.
    pub fn config(&self) -> &StorageConfig {
        &self.config
    }

    /// Whether skipping a tick would leave the model bit-identical. The
    /// storage model is stateless — [`Storage::tick`] takes `&self` and is
    /// a pure function of its inputs — so it is always quiescent; the
    /// event engine never schedules a wakeup for it.
    pub fn is_quiescent(&self) -> bool {
        true
    }

    /// Serve the demanded IO for one tick. Demands beyond device limits
    /// saturate: the device runs 100% busy and delivers its peak rates.
    pub fn tick(&self, demand: Option<&IoDemand>) -> StorageTickResult {
        let Some(demand) = demand else {
            return StorageTickResult::default();
        };
        let (peak_read, peak_write) = match demand.pattern {
            IoPattern::Sequential => (self.config.seq_read_mbps, self.config.seq_write_mbps),
            IoPattern::Random => (self.config.rand_read_mbps, self.config.rand_write_mbps),
        };
        let read = demand.read_mbps.clamp(0.0, peak_read);
        let write = demand.write_mbps.clamp(0.0, peak_write);
        // Reads and writes share the device; busy fractions add.
        let busy = (read / peak_read + write / peak_write).clamp(0.0, 1.0);
        StorageTickResult {
            busy,
            read_mbps: read,
            write_mbps: write,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SocConfig;

    fn storage() -> Storage {
        Storage::new(SocConfig::snapdragon_888().storage)
    }

    #[test]
    fn no_demand_is_idle() {
        let r = storage().tick(None);
        assert_eq!(r.busy, 0.0);
        assert_eq!(r.read_mbps, 0.0);
    }

    #[test]
    fn sequential_faster_than_random() {
        let s = storage();
        let seq = s.tick(Some(&IoDemand::sequential(5000.0, 5000.0)));
        let rnd = s.tick(Some(&IoDemand::random(5000.0, 5000.0)));
        assert!(seq.read_mbps > rnd.read_mbps);
        assert!(seq.write_mbps > rnd.write_mbps);
    }

    #[test]
    fn saturation_caps_throughput_and_busy() {
        let s = storage();
        let r = s.tick(Some(&IoDemand::sequential(1.0e6, 1.0e6)));
        assert_eq!(r.read_mbps, s.config().seq_read_mbps);
        assert_eq!(r.write_mbps, s.config().seq_write_mbps);
        assert_eq!(r.busy, 1.0);
    }

    #[test]
    fn light_demand_partial_busy() {
        let s = storage();
        let r = s.tick(Some(&IoDemand::sequential(210.0, 0.0)));
        assert!((r.busy - 0.1).abs() < 1e-9);
    }

    #[test]
    fn stateless_model_is_always_quiescent() {
        let s = storage();
        assert!(s.is_quiescent());
        let d = IoDemand::random(500.0, 200.0);
        // Pure: repeated ticks with the same inputs give the same outputs.
        assert_eq!(s.tick(Some(&d)), s.tick(Some(&d)));
        assert!(s.is_quiescent());
    }

    #[test]
    fn mixed_read_write_busy_adds() {
        let s = storage();
        let half_read = s.config().seq_read_mbps / 2.0;
        let half_write = s.config().seq_write_mbps / 2.0;
        let r = s.tick(Some(&IoDemand::sequential(half_read, half_write)));
        assert!((r.busy - 1.0).abs() < 1e-9);
    }
}
