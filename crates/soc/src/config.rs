//! SoC configuration: the simulated equivalent of the paper's Table II.
//!
//! [`SocConfig::snapdragon_888`] reproduces the Qualcomm Snapdragon 888
//! Mobile Hardware Development Kit used by the paper: a tri-cluster Kryo 680
//! CPU (1 prime + 3 gold + 4 silver cores), 4 MB shared L3, 3 MB system-level
//! cache, an Adreno-660-class GPU, a Hexagon-780-class AI engine, 12 GB of
//! LPDDR5 and 256 GB of flash storage driving a Full-HD external display.
//!
//! Custom configurations are assembled with [`SocConfigBuilder`]; every
//! configuration is validated before an [`crate::engine::Engine`] accepts it.

use crate::cache::CacheConfig;
use crate::error::SocError;

/// The role a CPU cluster plays in a big.LITTLE / DynamIQ topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClusterKind {
    /// Energy-efficient in-order cores (e.g. Cortex-A55).
    Little,
    /// Mid-tier out-of-order cores (e.g. Cortex-A78).
    Mid,
    /// The prime / maximum-performance core (e.g. Cortex-X1).
    Big,
}

impl ClusterKind {
    /// All cluster kinds in ascending performance order.
    pub const ALL: [ClusterKind; 3] = [ClusterKind::Little, ClusterKind::Mid, ClusterKind::Big];

    /// Human-readable name matching the paper's terminology.
    pub fn name(self) -> &'static str {
        match self {
            ClusterKind::Little => "CPU Little",
            ClusterKind::Mid => "CPU Mid",
            ClusterKind::Big => "CPU Big",
        }
    }
}

/// Configuration of one CPU core cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Marketing/model name of the core (e.g. "Kryo 680 Prime").
    pub model: String,
    /// Cluster role in the heterogeneous topology.
    pub kind: ClusterKind,
    /// Number of identical cores in the cluster.
    pub cores: usize,
    /// Maximum operating frequency in MHz.
    pub max_freq_mhz: f64,
    /// Minimum operating frequency in MHz.
    pub min_freq_mhz: f64,
    /// L1 instruction cache per core, in KiB.
    pub l1i_kib: u32,
    /// L1 data cache per core, in KiB.
    pub l1d_kib: u32,
    /// Private L2 cache per core, in KiB.
    pub l2_kib: u32,
    /// Sustainable micro-op issue width of the pipeline.
    pub issue_width: f64,
    /// Quality of the branch predictor in `[0, 1]`; 1.0 is a perfect
    /// predictor. Bigger out-of-order cores ship better predictors.
    pub branch_predictor_quality: f64,
}

impl ClusterConfig {
    fn validate(&self) -> Result<(), SocError> {
        if self.cores == 0 {
            return Err(SocError::InvalidConfig(format!(
                "cluster '{}' has zero cores",
                self.model
            )));
        }
        if !(self.min_freq_mhz > 0.0 && self.max_freq_mhz >= self.min_freq_mhz) {
            return Err(SocError::InvalidConfig(format!(
                "cluster '{}' frequency range [{}, {}] MHz is invalid",
                self.model, self.min_freq_mhz, self.max_freq_mhz
            )));
        }
        if self.issue_width < 1.0 {
            return Err(SocError::InvalidConfig(format!(
                "cluster '{}' issue width {} < 1",
                self.model, self.issue_width
            )));
        }
        if !(0.0..=1.0).contains(&self.branch_predictor_quality) {
            return Err(SocError::InvalidConfig(format!(
                "cluster '{}' branch predictor quality {} outside [0, 1]",
                self.model, self.branch_predictor_quality
            )));
        }
        if self.l1i_kib == 0 || self.l1d_kib == 0 || self.l2_kib == 0 {
            return Err(SocError::InvalidConfig(format!(
                "cluster '{}' has a zero-sized cache",
                self.model
            )));
        }
        Ok(())
    }
}

/// Configuration of the GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Marketing/model name (e.g. "Adreno 660").
    pub model: String,
    /// Number of shader processor clusters.
    pub shader_cores: usize,
    /// Maximum GPU frequency in MHz.
    pub max_freq_mhz: f64,
    /// Minimum GPU frequency in MHz.
    pub min_freq_mhz: f64,
    /// Peak memory-bus bandwidth available to the GPU, in GB/s.
    pub bus_bandwidth_gbps: f64,
    /// Texture / L1 texture cache per shader core, in KiB.
    pub texture_cache_kib: u32,
}

impl GpuConfig {
    fn validate(&self) -> Result<(), SocError> {
        if self.shader_cores == 0 {
            return Err(SocError::InvalidConfig("GPU has zero shader cores".into()));
        }
        if !(self.min_freq_mhz > 0.0 && self.max_freq_mhz >= self.min_freq_mhz) {
            return Err(SocError::InvalidConfig(
                "GPU frequency range invalid".into(),
            ));
        }
        if self.bus_bandwidth_gbps <= 0.0 {
            return Err(SocError::InvalidConfig(
                "GPU bus bandwidth must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Configuration of the AI engine (DSP + tensor accelerator).
#[derive(Debug, Clone, PartialEq)]
pub struct AieConfig {
    /// Marketing/model name (e.g. "Hexagon 780").
    pub model: String,
    /// Maximum AIE frequency in MHz.
    pub max_freq_mhz: f64,
    /// Minimum AIE frequency in MHz.
    pub min_freq_mhz: f64,
    /// Peak throughput in TOPS, used to scale kernel intensities.
    pub peak_tops: f64,
    /// Video codecs the fixed-function/DSP pipeline can accelerate.
    ///
    /// The Snapdragon 888 accelerates H.264, H.265 and VP9 but *not* AV1;
    /// unsupported codecs fall back to the CPU (paper §V-B).
    pub supported_codecs: Vec<crate::aie::Codec>,
}

impl AieConfig {
    fn validate(&self) -> Result<(), SocError> {
        if !(self.min_freq_mhz > 0.0 && self.max_freq_mhz >= self.min_freq_mhz) {
            return Err(SocError::InvalidConfig(
                "AIE frequency range invalid".into(),
            ));
        }
        if self.peak_tops <= 0.0 {
            return Err(SocError::InvalidConfig(
                "AIE peak TOPS must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Configuration of system DRAM.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryConfig {
    /// Memory technology label (e.g. "LPDDR5").
    pub technology: String,
    /// Total capacity in MiB.
    pub capacity_mib: f64,
    /// Peak bandwidth in GB/s.
    pub bandwidth_gbps: f64,
    /// Memory resident for the OS and idle services, in MiB. The paper
    /// measures idle usage and subtracts it from all process-specific
    /// numbers (Limitations §IV-A item 3).
    pub os_baseline_mib: f64,
}

impl MemoryConfig {
    fn validate(&self) -> Result<(), SocError> {
        if self.capacity_mib <= 0.0 {
            return Err(SocError::InvalidConfig(
                "memory capacity must be positive".into(),
            ));
        }
        if self.os_baseline_mib < 0.0 || self.os_baseline_mib >= self.capacity_mib {
            return Err(SocError::InvalidConfig(
                "OS baseline memory must be in [0, capacity)".into(),
            ));
        }
        if self.bandwidth_gbps <= 0.0 {
            return Err(SocError::InvalidConfig(
                "memory bandwidth must be positive".into(),
            ));
        }
        Ok(())
    }
}

/// Configuration of the flash storage device.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageConfig {
    /// Storage technology label (e.g. "UFS 3.1").
    pub technology: String,
    /// Capacity in GiB.
    pub capacity_gib: f64,
    /// Peak sequential read bandwidth in MB/s.
    pub seq_read_mbps: f64,
    /// Peak sequential write bandwidth in MB/s.
    pub seq_write_mbps: f64,
    /// Peak random read throughput in MB/s.
    pub rand_read_mbps: f64,
    /// Peak random write throughput in MB/s.
    pub rand_write_mbps: f64,
}

impl StorageConfig {
    fn validate(&self) -> Result<(), SocError> {
        if self.capacity_gib <= 0.0 {
            return Err(SocError::InvalidConfig(
                "storage capacity must be positive".into(),
            ));
        }
        for (label, v) in [
            ("sequential read", self.seq_read_mbps),
            ("sequential write", self.seq_write_mbps),
            ("random read", self.rand_read_mbps),
            ("random write", self.rand_write_mbps),
        ] {
            if v <= 0.0 {
                return Err(SocError::InvalidConfig(format!(
                    "storage {label} bandwidth must be positive"
                )));
            }
        }
        Ok(())
    }
}

/// Configuration of the attached display.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DisplayConfig {
    /// Horizontal resolution in pixels.
    pub width: u32,
    /// Vertical resolution in pixels.
    pub height: u32,
    /// Refresh rate in Hz; on-screen graphics tests are vsync-capped at
    /// this rate.
    pub refresh_hz: u32,
}

impl DisplayConfig {
    /// Total pixel count of the panel.
    pub fn pixels(&self) -> u64 {
        u64::from(self.width) * u64::from(self.height)
    }

    fn validate(&self) -> Result<(), SocError> {
        if self.width == 0 || self.height == 0 || self.refresh_hz == 0 {
            return Err(SocError::InvalidConfig(
                "display dimensions must be non-zero".into(),
            ));
        }
        Ok(())
    }
}

/// Complete configuration of a simulated mobile SoC platform.
///
/// Mirrors the paper's Table II. Construct presets with
/// [`SocConfig::snapdragon_888`] or custom platforms with
/// [`SocConfig::builder`].
#[derive(Debug, Clone, PartialEq)]
pub struct SocConfig {
    /// Platform name (e.g. "Qualcomm Snapdragon 888 Mobile HDK").
    pub name: String,
    /// CPU clusters, conventionally ordered little → mid → big.
    pub clusters: Vec<ClusterConfig>,
    /// Shared L3 cache serving all CPU clusters.
    pub l3: CacheConfig,
    /// System-level cache accessible by all SoC components.
    pub slc: CacheConfig,
    /// GPU configuration; `None` builds a headless CPU-only platform.
    pub gpu: Option<GpuConfig>,
    /// AI engine configuration; `None` removes the AIE (unsupported DSP
    /// work then falls back to the CPU).
    pub aie: Option<AieConfig>,
    /// System DRAM.
    pub memory: MemoryConfig,
    /// Flash storage.
    pub storage: StorageConfig,
    /// Attached display.
    pub display: DisplayConfig,
}

impl SocConfig {
    /// The platform of the paper's Table II: a Snapdragon 888 Mobile
    /// Hardware Development Kit with an external Full-HD display.
    pub fn snapdragon_888() -> Self {
        SocConfig {
            name: "Qualcomm Snapdragon 888 Mobile Hardware Development Kit".to_owned(),
            clusters: vec![
                ClusterConfig {
                    model: "Kryo 680 Silver (Cortex-A55)".to_owned(),
                    kind: ClusterKind::Little,
                    cores: 4,
                    max_freq_mhz: 1800.0,
                    min_freq_mhz: 300.0,
                    l1i_kib: 32,
                    l1d_kib: 32,
                    l2_kib: 128,
                    issue_width: 2.0,
                    branch_predictor_quality: 0.90,
                },
                ClusterConfig {
                    model: "Kryo 680 Gold (Cortex-A78)".to_owned(),
                    kind: ClusterKind::Mid,
                    cores: 3,
                    max_freq_mhz: 2420.0,
                    min_freq_mhz: 710.0,
                    l1i_kib: 64,
                    l1d_kib: 64,
                    l2_kib: 512,
                    issue_width: 4.0,
                    branch_predictor_quality: 0.95,
                },
                ClusterConfig {
                    model: "Kryo 680 Prime (Cortex-X1)".to_owned(),
                    kind: ClusterKind::Big,
                    cores: 1,
                    max_freq_mhz: 3000.0,
                    min_freq_mhz: 840.0,
                    l1i_kib: 64,
                    l1d_kib: 64,
                    l2_kib: 1024,
                    issue_width: 8.0,
                    branch_predictor_quality: 0.97,
                },
            ],
            l3: CacheConfig::new("L3", 4 * 1024),
            slc: CacheConfig::new("SLC", 3 * 1024),
            gpu: Some(GpuConfig {
                model: "Adreno 660".to_owned(),
                shader_cores: 3,
                max_freq_mhz: 840.0,
                min_freq_mhz: 315.0,
                bus_bandwidth_gbps: 51.2,
                texture_cache_kib: 128,
            }),
            aie: Some(AieConfig {
                model: "Hexagon 780".to_owned(),
                max_freq_mhz: 1000.0,
                min_freq_mhz: 300.0,
                peak_tops: 26.0,
                supported_codecs: vec![
                    crate::aie::Codec::H264,
                    crate::aie::Codec::H265,
                    crate::aie::Codec::Vp9,
                ],
            }),
            memory: MemoryConfig {
                technology: "LPDDR5".to_owned(),
                capacity_mib: 12.0 * 1024.0,
                bandwidth_gbps: 51.2,
                // 11.83 GiB visible; the paper reports an average usage of
                // 21.6% = 2.55 GiB including active workloads, with the idle
                // OS baseline around 1.4 GiB on Android 11.
                os_baseline_mib: 1433.6,
            },
            storage: StorageConfig {
                technology: "UFS 3.1".to_owned(),
                capacity_gib: 256.0,
                seq_read_mbps: 2100.0,
                seq_write_mbps: 1200.0,
                rand_read_mbps: 320.0,
                rand_write_mbps: 280.0,
            },
            display: DisplayConfig {
                width: 1920,
                height: 1080,
                refresh_hz: 60,
            },
        }
    }

    /// Start building a custom SoC from scratch.
    pub fn builder(name: impl Into<String>) -> SocConfigBuilder {
        SocConfigBuilder::new(name)
    }

    /// Total number of CPU cores across all clusters.
    pub fn total_cores(&self) -> usize {
        self.clusters.iter().map(|c| c.cores).sum()
    }

    /// Look up the cluster with the given role, if present.
    pub fn cluster(&self, kind: ClusterKind) -> Option<&ClusterConfig> {
        self.clusters.iter().find(|c| c.kind == kind)
    }

    /// A stable fingerprint of the whole platform for content-addressed
    /// result caching: FNV-1a over the canonical debug rendering of every
    /// field. Any change to any knob — a frequency, a cache size, adding
    /// or removing a component — yields a different digest, and a field
    /// added to the model in a future revision flows into the digest
    /// automatically.
    pub fn content_digest(&self) -> u64 {
        let repr = format!("{self:?}");
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in repr.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Validate all fields; [`crate::engine::Engine::new`] calls this.
    pub fn validate(&self) -> Result<(), SocError> {
        if self.clusters.is_empty() {
            return Err(SocError::InvalidConfig("cluster list is empty".into()));
        }
        for c in &self.clusters {
            c.validate()?;
        }
        let mut kinds: Vec<ClusterKind> = self.clusters.iter().map(|c| c.kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        if kinds.len() != self.clusters.len() {
            return Err(SocError::InvalidConfig(
                "duplicate cluster kinds; each of little/mid/big may appear at most once".into(),
            ));
        }
        self.l3.validate().map_err(SocError::InvalidConfig)?;
        self.slc.validate().map_err(SocError::InvalidConfig)?;
        if let Some(gpu) = &self.gpu {
            gpu.validate()?;
        }
        if let Some(aie) = &self.aie {
            aie.validate()?;
        }
        self.memory.validate()?;
        self.storage.validate()?;
        self.display.validate()?;
        Ok(())
    }
}

/// Builder for [`SocConfig`].
///
/// Starts from a minimal valid single-cluster platform; every component can
/// be replaced. The terminal [`build`](SocConfigBuilder::build) validates
/// the result.
///
/// ```
/// use mwc_soc::config::{ClusterConfig, ClusterKind, SocConfig};
///
/// let soc = SocConfig::builder("test-soc")
///     .cluster(ClusterConfig {
///         model: "TestCore".into(),
///         kind: ClusterKind::Little,
///         cores: 4,
///         max_freq_mhz: 2000.0,
///         min_freq_mhz: 500.0,
///         l1i_kib: 32,
///         l1d_kib: 32,
///         l2_kib: 256,
///         issue_width: 2.0,
///         branch_predictor_quality: 0.9,
///     })
///     .build()?;
/// assert_eq!(soc.total_cores(), 4);
/// # Ok::<(), mwc_soc::error::SocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SocConfigBuilder {
    config: SocConfig,
    cleared_clusters: bool,
}

impl SocConfigBuilder {
    fn new(name: impl Into<String>) -> Self {
        let mut config = SocConfig::snapdragon_888();
        config.name = name.into();
        SocConfigBuilder {
            config,
            cleared_clusters: false,
        }
    }

    /// Add a CPU cluster. The first call replaces the preset's cluster
    /// list; subsequent calls append.
    pub fn cluster(mut self, cluster: ClusterConfig) -> Self {
        if !self.cleared_clusters {
            self.config.clusters.clear();
            self.cleared_clusters = true;
        }
        self.config.clusters.push(cluster);
        self
    }

    /// Replace the shared L3 cache.
    pub fn l3(mut self, l3: CacheConfig) -> Self {
        self.config.l3 = l3;
        self
    }

    /// Replace the system-level cache.
    pub fn slc(mut self, slc: CacheConfig) -> Self {
        self.config.slc = slc;
        self
    }

    /// Replace (or remove, with `None`) the GPU.
    pub fn gpu(mut self, gpu: Option<GpuConfig>) -> Self {
        self.config.gpu = gpu;
        self
    }

    /// Replace (or remove, with `None`) the AI engine.
    pub fn aie(mut self, aie: Option<AieConfig>) -> Self {
        self.config.aie = aie;
        self
    }

    /// Replace the DRAM configuration.
    pub fn memory(mut self, memory: MemoryConfig) -> Self {
        self.config.memory = memory;
        self
    }

    /// Replace the storage configuration.
    pub fn storage(mut self, storage: StorageConfig) -> Self {
        self.config.storage = storage;
        self
    }

    /// Replace the display configuration.
    pub fn display(mut self, display: DisplayConfig) -> Self {
        self.config.display = display;
        self
    }

    /// Validate and return the configuration.
    pub fn build(self) -> Result<SocConfig, SocError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapdragon_888_matches_table_2() {
        let soc = SocConfig::snapdragon_888();
        soc.validate().expect("preset must validate");
        assert_eq!(soc.total_cores(), 8);
        let big = soc.cluster(ClusterKind::Big).unwrap();
        assert_eq!(big.cores, 1);
        assert_eq!(big.max_freq_mhz, 3000.0);
        assert_eq!(big.l2_kib, 1024);
        let mid = soc.cluster(ClusterKind::Mid).unwrap();
        assert_eq!(mid.cores, 3);
        assert_eq!(mid.max_freq_mhz, 2420.0);
        assert_eq!(mid.l2_kib, 512);
        let little = soc.cluster(ClusterKind::Little).unwrap();
        assert_eq!(little.cores, 4);
        assert_eq!(little.max_freq_mhz, 1800.0);
        assert_eq!(little.l2_kib, 128);
        assert_eq!(soc.l3.size_kib, 4096);
        assert_eq!(soc.slc.size_kib, 3072);
        assert_eq!(soc.memory.capacity_mib, 12.0 * 1024.0);
        assert_eq!(soc.display.pixels(), 1920 * 1080);
    }

    #[test]
    fn aie_does_not_support_av1() {
        let soc = SocConfig::snapdragon_888();
        let aie = soc.aie.unwrap();
        assert!(aie.supported_codecs.contains(&crate::aie::Codec::H264));
        assert!(aie.supported_codecs.contains(&crate::aie::Codec::H265));
        assert!(aie.supported_codecs.contains(&crate::aie::Codec::Vp9));
        assert!(!aie.supported_codecs.contains(&crate::aie::Codec::Av1));
    }

    #[test]
    fn builder_replaces_clusters() {
        let soc = SocConfig::builder("mono")
            .cluster(ClusterConfig {
                model: "OnlyCore".into(),
                kind: ClusterKind::Big,
                cores: 2,
                max_freq_mhz: 2500.0,
                min_freq_mhz: 500.0,
                l1i_kib: 64,
                l1d_kib: 64,
                l2_kib: 512,
                issue_width: 6.0,
                branch_predictor_quality: 0.96,
            })
            .build()
            .unwrap();
        assert_eq!(soc.clusters.len(), 1);
        assert_eq!(soc.total_cores(), 2);
    }

    #[test]
    fn rejects_empty_clusters() {
        let mut soc = SocConfig::snapdragon_888();
        soc.clusters.clear();
        assert!(matches!(soc.validate(), Err(SocError::InvalidConfig(_))));
    }

    #[test]
    fn rejects_duplicate_cluster_kinds() {
        let mut soc = SocConfig::snapdragon_888();
        let dup = soc.clusters[0].clone();
        soc.clusters.push(dup);
        assert!(soc.validate().is_err());
    }

    #[test]
    fn rejects_inverted_frequency_range() {
        let mut soc = SocConfig::snapdragon_888();
        soc.clusters[0].min_freq_mhz = 4000.0;
        assert!(soc.validate().is_err());
    }

    #[test]
    fn rejects_zero_core_cluster() {
        let mut soc = SocConfig::snapdragon_888();
        soc.clusters[1].cores = 0;
        assert!(soc.validate().is_err());
    }

    #[test]
    fn rejects_os_baseline_above_capacity() {
        let mut soc = SocConfig::snapdragon_888();
        soc.memory.os_baseline_mib = soc.memory.capacity_mib + 1.0;
        assert!(soc.validate().is_err());
    }

    #[test]
    fn headless_soc_is_valid() {
        let soc = SocConfig::builder("headless")
            .gpu(None)
            .aie(None)
            .build()
            .unwrap();
        assert!(soc.gpu.is_none());
        assert!(soc.aie.is_none());
    }

    #[test]
    fn rejects_bad_branch_predictor_quality() {
        let mut soc = SocConfig::snapdragon_888();
        soc.clusters[2].branch_predictor_quality = 1.5;
        assert!(soc.validate().is_err());
    }
}
