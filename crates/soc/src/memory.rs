//! System DRAM model: capacity accounting and bandwidth utilization.
//!
//! Snapdragon Profiler reports *total* system memory usage including the
//! Android OS and its services; the paper subtracts a measured idle
//! baseline from all process-specific numbers (Limitations §IV-A). The
//! model keeps both views: [`MemoryTickResult::total_used_mib`] is what the
//! profiler would report raw, [`MemoryTickResult::workload_mib`] is the
//! baseline-subtracted value used in the analysis.

use crate::config::MemoryConfig;

/// Memory demanded by a workload for one tick.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryDemand {
    /// Heap/anonymous footprint of the workload, in MiB.
    pub footprint_mib: f64,
    /// Streaming bandwidth demanded, in GB/s.
    pub bandwidth_gbps: f64,
}

/// Per-tick output of the memory model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryTickResult {
    /// Total used memory including the OS baseline, in MiB.
    pub total_used_mib: f64,
    /// Workload-attributed memory (baseline subtracted), in MiB.
    pub workload_mib: f64,
    /// Fraction of total system memory in use, in `[0, 1]`.
    pub used_fraction: f64,
    /// Memory-bus bandwidth utilization, in `[0, 1]`.
    pub bandwidth_utilization: f64,
}

/// Runtime model of system DRAM.
#[derive(Debug, Clone)]
pub struct Memory {
    config: MemoryConfig,
}

impl Memory {
    /// Build the runtime model from a validated configuration.
    pub fn new(config: MemoryConfig) -> Self {
        Memory { config }
    }

    /// The memory's static configuration.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Whether skipping a tick would leave the model bit-identical. The
    /// DRAM model is stateless — [`Memory::tick`] takes `&self` and is a
    /// pure function of its inputs — so it is always quiescent; the event
    /// engine never schedules a wakeup for it.
    pub fn is_quiescent(&self) -> bool {
        true
    }

    /// Account for this tick's residency and traffic. `extra_mib` carries
    /// non-CPU footprints (GPU textures, AIE buffers); `dram_traffic_gbps`
    /// carries CPU-side DRAM traffic derived from cache misses.
    pub fn tick(
        &self,
        demand: &MemoryDemand,
        extra_mib: f64,
        dram_traffic_gbps: f64,
    ) -> MemoryTickResult {
        let workload = (demand.footprint_mib + extra_mib).max(0.0);
        let total = (self.config.os_baseline_mib + workload).min(self.config.capacity_mib);
        let bw = ((demand.bandwidth_gbps + dram_traffic_gbps) / self.config.bandwidth_gbps)
            .clamp(0.0, 1.0);
        MemoryTickResult {
            total_used_mib: total,
            workload_mib: total - self.config.os_baseline_mib,
            used_fraction: total / self.config.capacity_mib,
            bandwidth_utilization: bw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SocConfig;

    fn memory() -> Memory {
        Memory::new(SocConfig::snapdragon_888().memory)
    }

    #[test]
    fn idle_reports_os_baseline() {
        let m = memory();
        let r = m.tick(&MemoryDemand::default(), 0.0, 0.0);
        assert_eq!(r.total_used_mib, m.config().os_baseline_mib);
        assert_eq!(r.workload_mib, 0.0);
        assert!(r.used_fraction > 0.0 && r.used_fraction < 0.2);
    }

    #[test]
    fn footprint_adds_to_baseline() {
        let m = memory();
        let d = MemoryDemand {
            footprint_mib: 2048.0,
            bandwidth_gbps: 0.0,
        };
        let r = m.tick(&d, 512.0, 0.0);
        assert_eq!(r.workload_mib, 2560.0);
        assert_eq!(r.total_used_mib, m.config().os_baseline_mib + 2560.0);
    }

    #[test]
    fn usage_capped_at_capacity() {
        let m = memory();
        let d = MemoryDemand {
            footprint_mib: 1.0e9,
            bandwidth_gbps: 0.0,
        };
        let r = m.tick(&d, 0.0, 0.0);
        assert_eq!(r.total_used_mib, m.config().capacity_mib);
        assert_eq!(r.used_fraction, 1.0);
    }

    #[test]
    fn bandwidth_utilization_clamped() {
        let m = memory();
        let d = MemoryDemand {
            footprint_mib: 0.0,
            bandwidth_gbps: 500.0,
        };
        let r = m.tick(&d, 0.0, 100.0);
        assert_eq!(r.bandwidth_utilization, 1.0);
    }

    #[test]
    fn stateless_model_is_always_quiescent() {
        let m = memory();
        assert!(m.is_quiescent());
        let d = MemoryDemand {
            footprint_mib: 1024.0,
            bandwidth_gbps: 10.0,
        };
        // Pure: repeated ticks with the same inputs give the same outputs.
        assert_eq!(m.tick(&d, 100.0, 5.0), m.tick(&d, 100.0, 5.0));
        assert!(m.is_quiescent());
    }

    #[test]
    fn negative_extra_clamped() {
        let m = memory();
        let r = m.tick(&MemoryDemand::default(), -100.0, 0.0);
        assert_eq!(r.workload_mib, 0.0);
    }
}
