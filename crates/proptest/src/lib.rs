//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no access to crates.io, so this workspace-local
//! crate implements the API subset `tests/properties.rs` uses: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`, `name in strategy`
//! and `name: Type` parameters), range and [`collection::vec`] strategies,
//! [`Strategy::prop_map`], [`arbitrary::any`], and the
//! [`prop_assert!`]/[`prop_assert_eq!`]/[`prop_assume!`] macros.
//!
//! Inputs are drawn from a deterministic generator keyed by the test name
//! and case index, so failures are reproducible run-to-run. Shrinking is
//! intentionally absent: a failing case reports the case index instead of a
//! minimized input.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Test-case execution: configuration, RNG, and the case loop.
pub mod test_runner {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases each test must run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed: the property does not hold for this input.
        Fail(String),
        /// `prop_assume!` rejected the input; the case is re-drawn.
        Reject(String),
    }

    impl TestCaseError {
        /// A failed assertion with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (filtered-out) input with the given reason.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Deterministic generator (xoshiro256++) used to draw strategy values.
    ///
    /// Each case gets a fresh stream derived from the test name and the case
    /// index, so case `n` of a test always sees the same inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Stream for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0100_0000_01B3);
            }
            let mut sm = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            TestRng { s }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, span)` (`span > 0`).
        pub fn below_u128(&mut self, span: u128) -> u128 {
            debug_assert!(span > 0);
            u128::from(self.next_u64()) % span
        }

        /// Uniform double in `[0, 1)` from the high 53 bits of one word.
        pub fn unit_open(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform double in `[0, 1]` (closed on both ends).
        pub fn unit_closed(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64)
        }
    }

    /// Drive one property: draw inputs and run `case` until `config.cases`
    /// cases pass, panicking on the first failure.
    ///
    /// Used by the expansion of [`crate::proptest!`]; not part of the public
    /// proptest API surface.
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, case: F)
    where
        F: Fn(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let max_rejects = u64::from(config.cases) * 64 + 1024;
        let mut index: u64 = 0;
        while passed < config.cases {
            let mut rng = TestRng::for_case(name, index);
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= max_rejects,
                        "proptest {name}: too many prop_assume! rejections \
                         ({rejected} rejects for {passed} passing cases)"
                    );
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest {name}: case {index} failed: {msg}")
                }
            }
            index += 1;
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adapter produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + (self.end - self.start) * rng.unit_open()
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "cannot sample empty range");
            lo + (hi - lo) * rng.unit_closed()
        }
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    self.start.wrapping_add(rng.below_u128(span) as $t)
                }
            }

            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as u128)
                        .wrapping_sub(lo as u128)
                        .wrapping_add(1);
                    if span == 0 {
                        return lo.wrapping_add(rng.next_u64() as $t);
                    }
                    lo.wrapping_add(rng.below_u128(span) as $t)
                }
            }
        )*};
    }

    impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
}

/// Canonical "any value of this type" strategies.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types that can be generated without an explicit strategy.
    pub trait Arbitrary: Sized {
        /// Draw one unconstrained value.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// The canonical strategy for `T`: any representable value.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Strategies over collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An inclusive range of collection sizes.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128 + 1;
            let len = self.size.lo + rng.below_u128(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Module alias matching `proptest::prelude::prop` (e.g.
/// `prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// Everything a test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a `proptest!` body, failing the current case
/// (not the whole process) when it does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert two values are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Assert two values are not equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Reject the current input (e.g. an invalid parameter combination); the
/// runner draws a replacement case instead of counting a failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Bind `proptest!` parameters from the case RNG. Internal.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; ,) => {};
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let __strategy = $strat;
        let $name = $crate::strategy::Strategy::generate(&__strategy, $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident in $strat:expr) => {
        let __strategy = $strat;
        let $name = $crate::strategy::Strategy::generate(&__strategy, $rng);
    };
    ($rng:ident; $name:ident: $ty:ty, $($rest:tt)*) => {
        let $name: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            $rng,
        );
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident: $ty:ty) => {
        let $name: $ty = $crate::strategy::Strategy::generate(
            &$crate::arbitrary::any::<$ty>(),
            $rng,
        );
    };
}

/// Expand the `#[test] fn ...` items of a `proptest!` block. Internal.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr);) => {};
    (config = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run_cases(
                stringify!($name),
                &__config,
                |__rng: &mut $crate::test_runner::TestRng|
                    -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $crate::__proptest_bind!(__rng; $($params)*);
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items!(config = ($config); $($rest)*);
    };
}

/// Define property tests. Mirrors proptest's macro: an optional
/// `#![proptest_config(..)]` header followed by `#[test] fn` items whose
/// parameters are either `name in strategy` or `name: Type`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(config = ($config); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(
            x in -3.5f64..7.25,
            y in 0u64..100,
            z in 1usize..=4,
        ) {
            prop_assert!((-3.5..7.25).contains(&x));
            prop_assert!(y < 100);
            prop_assert!((1..=4).contains(&z));
        }

        #[test]
        fn vectors_honour_size_ranges(
            fixed in prop::collection::vec(0.0f64..1.0, 4),
            ranged in prop::collection::vec(any::<u8>(), 2..6),
            inclusive in prop::collection::vec(0usize..3, 1..=3),
        ) {
            prop_assert_eq!(fixed.len(), 4);
            prop_assert!((2..6).contains(&ranged.len()));
            prop_assert!((1..=3).contains(&inclusive.len()));
        }

        #[test]
        fn prop_map_transforms(v in prop::collection::vec(1.0f64..2.0, 3).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 3);
        }

        #[test]
        fn typed_params_draw_from_any(a: u32, b: bool) {
            prop_assert!(u64::from(a) < (1u64 << 32));
            prop_assert!(usize::from(b) <= 1);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0, "only even values survive the assume");
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = 0.0f64..1.0;
        let a = strat.generate(&mut TestRng::for_case("t", 5));
        let b = strat.generate(&mut TestRng::for_case("t", 5));
        let c = strat.generate(&mut TestRng::for_case("t", 6));
        assert_eq!(a.to_bits(), b.to_bits());
        assert_ne!(a.to_bits(), c.to_bits());
    }

    #[test]
    #[should_panic(expected = "case")]
    fn failures_panic_with_case_index() {
        use crate::test_runner::{run_cases, ProptestConfig, TestCaseError};
        run_cases("always_fails", &ProptestConfig::with_cases(4), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
